// Multi-level Dump cascade coverage: forces a level-1 → level-2 →
// level-3 cascade (three re-orders triggered by one flush), pins the
// blocking/deamortized trace equivalence across it, and checks that
// every live record stays readable at every point of the cascade — in
// blocking mode, mid-chain, and after the chain drains.
//
// Geometry: B = 4, N = 64 → levels of 8, 16, 32, 64 blocks. With pure
// distinct-id inserts the flush arithmetic is deterministic: flush 7
// (the 28th insert) finds L1 = 8 and L2 = 16 full, so dump(1) spills
// L2 into L3, dump(0) refills L2 from L1, and the flush rebuilds L1 —
// three re-orders from one serving op.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/trace_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::oblivious {
namespace {

constexpr uint64_t kBuffer = 4;
constexpr uint64_t kCapacity = 64;
constexpr uint64_t kHierarchy = 2 * kCapacity - 2 * kBuffer;  // 120

ObliviousStoreOptions CascadeOptions(bool deamortize, bool strict,
                                     uint64_t seed) {
  ObliviousStoreOptions opts;
  opts.buffer_blocks = kBuffer;
  opts.capacity_blocks = kCapacity;
  opts.partition_base = 0;
  opts.scratch_base = kHierarchy;
  opts.deamortize_reorders = deamortize;
  opts.shadow_base = kHierarchy + kCapacity;
  opts.strict_reorder_schedule = strict;
  opts.reorder_step_blocks = 1;  // pace at the floor; tests step by hand
  opts.drbg_seed = seed;
  return opts;
}

uint64_t DeviceBlocks(bool deamortize) {
  return kHierarchy + kCapacity + (deamortize ? kHierarchy : 0) + 4;
}

Bytes PayloadFor(const ObliviousStore& store, uint64_t id) {
  Bytes p(store.payload_size());
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = static_cast<uint8_t>(id * 7 + i);
  }
  return p;
}

void VerifyAll(ObliviousStore& store, uint64_t count, const char* when) {
  Bytes out(store.payload_size());
  for (uint64_t id = 0; id < count; ++id) {
    ASSERT_TRUE(store.Read(id, out.data()).ok()) << when << " id " << id;
    ASSERT_EQ(out, PayloadFor(store, id)) << when << " id " << id;
  }
}

void DrainStore(ObliviousStore& store) {
  bool more = true;
  int iters = 0;
  while (more) {
    ASSERT_TRUE(store.StepReorder(1u << 20, &more).ok());
    ASSERT_LT(++iters, 10000) << "re-order chain failed to drain";
  }
}

TEST(ReorderCascadeTest, BlockingCascadeRunsThreeReordersInOneOp) {
  ObliviousStoreOptions opts = CascadeOptions(false, false, 101);
  storage::MemBlockDevice dev(DeviceBlocks(false), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok());

  uint64_t max_delta = 0;
  uint64_t cascade_at = 0;
  for (uint64_t id = 0; id < 48; ++id) {
    const uint64_t before = (*store)->stats().reorders;
    ASSERT_TRUE((*store)->Insert(id, PayloadFor(**store, id).data()).ok());
    const uint64_t delta = (*store)->stats().reorders - before;
    if (delta > max_delta) {
      max_delta = delta;
      cascade_at = id;
    }
  }
  // Flush 7 (insert #27, 0-based) must have cascaded L2 → L3, L1 → L2,
  // buffer → L1: three re-orders inside one serving op.
  EXPECT_GE(max_delta, 3u) << "no multi-level cascade observed";
  EXPECT_EQ(cascade_at, 27u);
  const auto occ = (*store)->LevelOccupancy();
  ASSERT_GE(occ.size(), 3u);
  EXPECT_GT(occ[2], 0u) << "level 3 never populated";
  VerifyAll(**store, 48, "post-cascade");
}

TEST(ReorderCascadeTest, DeamortizedCascadeInstallsJobChainInOrder) {
  ObliviousStoreOptions opts = CascadeOptions(true, false, 101);
  storage::MemBlockDevice dev(DeviceBlocks(true), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok());

  // Reach the pre-cascade state with every chain drained, so the flush
  // arithmetic matches the blocking schedule exactly.
  for (uint64_t id = 0; id < 27; ++id) {
    ASSERT_TRUE((*store)->Insert(id, PayloadFor(**store, id).data()).ok());
    DrainStore(**store);
  }
  // Insert #27 triggers the three-job chain: L2 → L3, L1 → L2, flush → L1.
  const uint64_t epoch_before = (*store)->reorder_epoch();
  const uint64_t reorders_before = (*store)->stats().reorders;
  ASSERT_TRUE((*store)->Insert(27, PayloadFor(**store, 27).data()).ok());

  // Step in small increments with no serving in between (reads would
  // stage records and spawn further chains): installs must land level by
  // level — epochs increase monotonically across many small steps, never
  // all at once — until the whole cascade has flipped.
  uint64_t last_epoch = (*store)->reorder_epoch();
  uint64_t install_points = last_epoch - epoch_before;
  bool more = true;
  int iters = 0;
  while (more) {
    ASSERT_TRUE((*store)->StepReorder(5, &more).ok());
    const uint64_t now = (*store)->reorder_epoch();
    if (now != last_epoch) {
      ++install_points;
      last_epoch = now;
    }
    ASSERT_LT(++iters, 10000);
  }
  EXPECT_GE((*store)->reorder_epoch() - epoch_before, 3u)
      << "cascade chain should install three levels";
  EXPECT_EQ((*store)->stats().reorders - reorders_before, 3u);
  EXPECT_GE(install_points, 2u) << "installs should spread across steps";
  const auto occ = (*store)->LevelOccupancy();
  EXPECT_GT(occ[2], 0u);
  VerifyAll(**store, 28, "post-chain");
}

TEST(ReorderCascadeTest, CascadeTraceEquivalentToBlockingSchedule) {
  // Pure-insert schedule across the full cascade depth, blocking vs
  // strict deamortized: per-level touch counts (reads and writes against
  // either region of each level, plus scratch) must match exactly.
  const auto run = [](bool deamortize, storage::TraceBlockDevice& trace,
                      ObliviousStore& store) {
    for (uint64_t id = 0; id < kCapacity; ++id) {
      ASSERT_TRUE(store.Insert(id, PayloadFor(store, id).data()).ok());
    }
    Bytes out(store.payload_size());
    Rng rng(4141);
    for (int op = 0; op < 100; ++op) {
      ASSERT_TRUE(store.Read(rng.Uniform(kCapacity), out.data()).ok());
    }
  };
  const auto bucketize = [](const storage::IoTrace& trace, int levels)
      -> std::vector<std::pair<uint64_t, uint64_t>> {
    std::vector<std::pair<uint64_t, uint64_t>> counts(levels + 1);
    for (const storage::TraceEvent& ev : trace) {
      uint64_t offset;
      if (ev.block_id < kHierarchy) {
        offset = ev.block_id;
      } else if (ev.block_id >= kHierarchy + kCapacity &&
                 ev.block_id < 2 * kHierarchy + kCapacity) {
        offset = ev.block_id - (kHierarchy + kCapacity);  // shadow mirror
      } else {
        offset = ~uint64_t{0};  // scratch
      }
      size_t bucket = levels;
      if (offset != ~uint64_t{0}) {
        bucket = 0;
        for (uint64_t cap = 2 * kBuffer; offset >= cap; cap *= 2) {
          offset -= cap;
          ++bucket;
        }
      }
      if (ev.kind == storage::TraceEvent::Kind::kRead) {
        ++counts[bucket].first;
      } else {
        ++counts[bucket].second;
      }
    }
    return counts;
  };

  storage::MemBlockDevice blocking_mem(DeviceBlocks(true), 4096);
  storage::TraceBlockDevice blocking_trace(&blocking_mem);
  auto blocking =
      ObliviousStore::Create(&blocking_trace, CascadeOptions(false, false, 77));
  ASSERT_TRUE(blocking.ok());
  run(false, blocking_trace, **blocking);

  storage::MemBlockDevice strict_mem(DeviceBlocks(true), 4096);
  storage::TraceBlockDevice strict_trace(&strict_mem);
  auto strict =
      ObliviousStore::Create(&strict_trace, CascadeOptions(true, true, 77));
  ASSERT_TRUE(strict.ok());
  run(true, strict_trace, **strict);
  DrainStore(**strict);  // blocking did its last chain inline

  const int levels = (*blocking)->height();
  const auto blocking_counts = bucketize(blocking_trace.trace(), levels);
  const auto strict_counts = bucketize(strict_trace.trace(), levels);
  for (int r = 0; r <= levels; ++r) {
    EXPECT_EQ(blocking_counts[r].first, strict_counts[r].first)
        << (r == levels ? "scratch" : "level") << " " << r + 1 << " reads";
    EXPECT_EQ(blocking_counts[r].second, strict_counts[r].second)
        << (r == levels ? "scratch" : "level") << " " << r + 1 << " writes";
  }
  const auto bs = (*blocking)->stats();
  const auto ss = (*strict)->stats();
  EXPECT_EQ(bs.buffer_flushes, ss.buffer_flushes);
  EXPECT_EQ(bs.reorders, ss.reorders);
  EXPECT_EQ(bs.level_probe_reads, ss.level_probe_reads);
  EXPECT_EQ(bs.reorder_reads, ss.reorder_reads);
  EXPECT_EQ(bs.reorder_writes, ss.reorder_writes);
}

TEST(ReorderCascadeTest, EveryLiveRecordReadableThroughoutCascades) {
  // Non-strict deamortized store under the full fill plus churn, with
  // erratic stepping: every inserted record must be readable after every
  // single op, whatever the chain state.
  ObliviousStoreOptions opts = CascadeOptions(true, false, 55);
  storage::MemBlockDevice dev(DeviceBlocks(true), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok());

  Rng rng = testing::MakeTestRng();
  Bytes out((*store)->payload_size());
  for (uint64_t id = 0; id < kCapacity; ++id) {
    ASSERT_TRUE((*store)->Insert(id, PayloadFor(**store, id).data()).ok());
    if (rng.Bernoulli(0.4)) {
      ASSERT_TRUE((*store)->StepReorder(1 + rng.Uniform(16)).ok());
    }
    // Spot-check a random prefix sample after every op...
    for (int probe = 0; probe < 3; ++probe) {
      const uint64_t check = rng.Uniform(id + 1);
      ASSERT_TRUE((*store)->Read(check, out.data()).ok())
          << "after insert " << id << " reading " << check;
      ASSERT_EQ(out, PayloadFor(**store, check));
    }
  }
  // ...and everything, everywhere, once the dust settles.
  DrainStore(**store);
  VerifyAll(**store, kCapacity, "final");
  EXPECT_GT((*store)->stats().reorder_steps, 0u);
}

}  // namespace
}  // namespace steghide::oblivious
