#include <gtest/gtest.h>

#include <set>

#include "agent/nonvolatile_agent.h"
#include "storage/mem_block_device.h"
#include "testing/rng.h"

namespace steghide::agent {
namespace {

using stegfs::StegFsOptions;

class NonVolatileAgentTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBlocks = 2048;

  NonVolatileAgentTest()
      : dev_(kBlocks, 4096),
        core_(&dev_, StegFsOptions{7, true}),
        agent_(&core_, NonVolatileAgent::Options{}) {
    EXPECT_TRUE(core_.Format().ok());
  }

  Bytes Pattern(size_t n, uint8_t seed) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(seed + i * 7);
    }
    return out;
  }

  storage::MemBlockDevice dev_;
  stegfs::StegFsCore core_;
  NonVolatileAgent agent_;
};

TEST_F(NonVolatileAgentTest, CreateWriteReadRoundTrip) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(10000, 3);
  ASSERT_TRUE(agent_.Write(*id, 0, data).ok());
  const auto back = agent_.Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_EQ(*agent_.FileSize(*id), data.size());
}

TEST_F(NonVolatileAgentTest, SubRangeReadsAndWrites) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(agent_.Write(*id, 0, Bytes(9000, 0xaa)).ok());
  // Overwrite a slice spanning a block boundary (payload = 4080).
  ASSERT_TRUE(agent_.Write(*id, 4000, Bytes(200, 0xbb)).ok());
  const auto back = agent_.Read(*id, 3990, 220);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ((*back)[i], 0xaa);
  for (size_t i = 10; i < 210; ++i) EXPECT_EQ((*back)[i], 0xbb);
  for (size_t i = 210; i < 220; ++i) EXPECT_EQ((*back)[i], 0xaa);
}

TEST_F(NonVolatileAgentTest, ReadPastEndTruncates) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(agent_.Write(*id, 0, Bytes(100, 1)).ok());
  const auto back = agent_.Read(*id, 50, 1000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 50u);
  EXPECT_TRUE(agent_.Read(*id, 500, 10)->empty());
}

TEST_F(NonVolatileAgentTest, WritesRelocateBlocks) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_.Write(*id, 0, Bytes(payload * 8, 0x11)).ok());
  ASSERT_TRUE(agent_.Flush(*id).ok());
  const auto fak = agent_.GetFak(*id);
  ASSERT_TRUE(fak.ok());
  const auto before = core_.LoadFile(*fak);
  ASSERT_TRUE(before.ok());

  // Update every block several times; with D/N ≈ 1 almost every update
  // relocates, so the block map must change.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t b = 0; b < 8; ++b) {
      ASSERT_TRUE(
          agent_.Write(*id, b * payload, Bytes(payload, 0x22)).ok());
    }
  }
  ASSERT_TRUE(agent_.Flush(*id).ok());
  const auto after = core_.LoadFile(*fak);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->block_ptrs, after->block_ptrs);

  // Content survives the relocations.
  const auto back = agent_.Read(*id, 0, payload * 8);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes(payload * 8, 0x22));
}

TEST_F(NonVolatileAgentTest, PersistsAcrossAgentRestart) {
  Bytes fak_ser;
  Bytes bitmap_ser;
  const Bytes data = Pattern(50000, 9);
  Bytes agent_key;
  {
    auto id = agent_.CreateFile();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(agent_.Write(*id, 0, data).ok());
    ASSERT_TRUE(agent_.Flush(*id).ok());
    const auto fak = agent_.GetFak(*id);
    ASSERT_TRUE(fak.ok());
    const std::string serialized = fak->Serialize();
    fak_ser = Bytes(serialized.begin(), serialized.end());
    agent_key = fak->header_key;  // construction 1: the agent key
    bitmap_ser = agent_.SerializeBitmap();
  }
  // A new agent instance with the same persistent secrets resumes the
  // volume.
  NonVolatileAgent resumed(&core_, NonVolatileAgent::Options{agent_key});
  ASSERT_TRUE(resumed.RestoreBitmap(bitmap_ser).ok());
  const auto fak = stegfs::FileAccessKey::Deserialize(
      std::string(fak_ser.begin(), fak_ser.end()));
  ASSERT_TRUE(fak.ok());
  auto id = resumed.OpenFile(*fak);
  ASSERT_TRUE(id.ok());
  const auto back = resumed.Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(NonVolatileAgentTest, TruncateReleasesBlocks) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_.Write(*id, 0, Bytes(payload * 10, 1)).ok());
  const uint64_t used_before = agent_.bitmap().data_count();
  ASSERT_TRUE(agent_.Truncate(*id, payload * 2).ok());
  EXPECT_EQ(agent_.bitmap().data_count(), used_before - 8);
  EXPECT_EQ(*agent_.FileSize(*id), payload * 2);
  const auto back = agent_.Read(*id, 0, payload * 10);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), payload * 2);
}

TEST_F(NonVolatileAgentTest, DeleteFileScrubsHeader) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(agent_.Write(*id, 0, Bytes(5000, 1)).ok());
  const auto fak = agent_.GetFak(*id);
  ASSERT_TRUE(fak.ok());
  const uint64_t used_before = agent_.bitmap().data_count();
  ASSERT_TRUE(agent_.DeleteFile(*id).ok());
  EXPECT_LT(agent_.bitmap().data_count(), used_before);
  // The FAK no longer opens anything.
  EXPECT_FALSE(agent_.OpenFile(*fak).ok());
  // The handle is gone.
  EXPECT_FALSE(agent_.Read(*id, 0, 1).ok());
}

TEST_F(NonVolatileAgentTest, IdleDummyUpdatesTouchDisk) {
  // Dummy updates must modify blocks (fresh IVs) without hurting data.
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(20000, 5);
  ASSERT_TRUE(agent_.Write(*id, 0, data).ok());

  ASSERT_TRUE(agent_.IdleDummyUpdates(200).ok());
  EXPECT_EQ(agent_.update_stats().dummy_updates, 200u);

  const auto back = agent_.Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(NonVolatileAgentTest, UnknownHandleErrors) {
  EXPECT_FALSE(agent_.Read(999, 0, 1).ok());
  EXPECT_FALSE(agent_.Write(999, 0, Bytes{1}).ok());
  EXPECT_FALSE(agent_.Flush(999).ok());
  EXPECT_FALSE(agent_.GetFak(999).ok());
}

TEST_F(NonVolatileAgentTest, LargeFileUsesIndirectBlocks) {
  auto id = agent_.CreateFile();
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  const uint64_t blocks = stegfs::kNumDirectPtrs + 10;
  ASSERT_TRUE(agent_.Write(*id, 0, Bytes(blocks * payload, 0x3c)).ok());
  ASSERT_TRUE(agent_.Flush(*id).ok());

  const auto fak = agent_.GetFak(*id);
  const auto loaded = core_.LoadFile(*fak);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->indirect_locs.size(), 1u);
  EXPECT_EQ(loaded->num_data_blocks(), blocks);

  const auto back = agent_.Read(*id, (blocks - 1) * payload, payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes(payload, 0x3c));
}

// ---- §4.1.5: E[iterations] = N / D -------------------------------------

class OverheadFormulaTest : public ::testing::TestWithParam<double> {};

TEST_P(OverheadFormulaTest, MeanIterationsMatchesAnalyticProperty) {
  const double utilization = GetParam();
  constexpr uint64_t kBlocks = 4096;
  storage::MemBlockDevice dev(kBlocks, 4096);
  stegfs::StegFsCore core(&dev, StegFsOptions{11, true});
  ASSERT_TRUE(core.Format().ok());
  NonVolatileAgent agent(&core, NonVolatileAgent::Options{});

  const size_t payload = core.payload_size();
  const uint64_t target_blocks =
      static_cast<uint64_t>(utilization * kBlocks);
  auto id = agent.CreateFile();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(agent.Write(*id, 0, Bytes(target_blocks * payload, 1)).ok());

  const double n_over_d =
      static_cast<double>(kBlocks) /
      static_cast<double>(agent.bitmap().dummy_count());

  agent.ResetUpdateStats();
  Rng rng = testing::MakeTestRng();
  const Bytes fresh(payload, 0x55);
  for (int i = 0; i < 600; ++i) {
    const uint64_t b = rng.Uniform(target_blocks);
    ASSERT_TRUE(agent.Write(*id, b * payload, fresh).ok());
  }
  const double measured = agent.update_stats().MeanIterations();
  // 600 geometric samples: allow 20 % relative slack.
  EXPECT_NEAR(measured, n_over_d, 0.2 * n_over_d)
      << "utilization " << utilization;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, OverheadFormulaTest,
                         ::testing::Values(0.1, 0.25, 0.4, 0.5));

}  // namespace
}  // namespace steghide::agent
