// Trace-equivalence suite for batched oblivious retrieval: pins, via
// TraceBlockDevice directly under the store, that MultiRead/MultiWrite
// groups leave the attacker-visible pattern unchanged — the same
// one-touch-per-level-per-request multiset as sequential requests, with
// batch-of-1 byte-identical to the single-request path — and that the
// charge_index_io amortization follows the documented deterministic
// shape (one index read per level per pass).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "crypto/cpu_features.h"
#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/trace_device.h"
#include "testing/device_factory.h"

namespace steghide::oblivious {
namespace {

using steghide::testing::TracedMemDevice;
using storage::IoTrace;
using storage::TraceEvent;

ObliviousStoreOptions BatchOptions(bool charge_index_io) {
  ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 64;  // levels 16, 32, 64; hierarchy = 112 blocks
  opts.partition_base = 0;
  opts.scratch_base = 112;
  opts.drbg_seed = 123;
  opts.charge_index_io = charge_index_io;
  return opts;
}

/// [begin, end) device ranges of the levels, derived from the geometry.
std::vector<std::pair<uint64_t, uint64_t>> LevelRanges(
    const ObliviousStoreOptions& opts) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  uint64_t base = opts.partition_base;
  for (uint64_t cap = 2 * opts.buffer_blocks; cap <= opts.capacity_blocks;
       cap *= 2) {
    ranges.emplace_back(base, base + cap);
    base += cap;
  }
  return ranges;
}

/// Touches per level in a trace that must consist of reads only.
std::vector<uint64_t> LevelTouchCounts(const IoTrace& trace,
                                       const ObliviousStoreOptions& opts) {
  const auto ranges = LevelRanges(opts);
  std::vector<uint64_t> counts(ranges.size(), 0);
  for (const TraceEvent& ev : trace) {
    EXPECT_EQ(ev.kind, TraceEvent::Kind::kRead);
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ev.block_id >= ranges[i].first && ev.block_id < ranges[i].second) {
        ++counts[i];
        break;
      }
    }
  }
  return counts;
}

/// One store over its own traced device. Two instances built with the
/// same options are bit-for-bit identical until their request streams
/// diverge (same DRBG seed, same insert history).
class StoreUnderTrace {
 public:
  explicit StoreUnderTrace(const ObliviousStoreOptions& opts)
      : dev_(256, 4096) {
    auto store = ObliviousStore::Create(&dev_.traced(), opts);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
    // Fill to capacity; 64 inserts flush the 8-record buffer exactly 8
    // times, so the measured window starts with an empty buffer.
    Bytes payload(store_->payload_size());
    for (uint64_t id = 0; id < 64; ++id) {
      std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(id));
      EXPECT_TRUE(store_->Insert(id, payload.data()).ok());
    }
    EXPECT_EQ(store_->buffer_fill(), 0u);
    store_->ResetStats();
    dev_.traced().ClearTrace();
  }

  ObliviousStore& store() { return *store_; }
  const IoTrace& trace() const { return dev_.trace(); }
  void ClearTrace() { dev_.traced().ClearTrace(); }

 private:
  TracedMemDevice dev_;
  std::unique_ptr<ObliviousStore> store_;
};

Bytes ExpectedPayload(const ObliviousStore& store, uint64_t id) {
  return Bytes(store.payload_size(), static_cast<uint8_t>(id));
}

// ---- batch-of-1 ----------------------------------------------------------

class BatchOfOneTest : public ::testing::TestWithParam<bool> {};

TEST_P(BatchOfOneTest, ByteIdenticalToSingleRequestPath) {
  const ObliviousStoreOptions opts = BatchOptions(GetParam());
  StoreUnderTrace single(opts), batched(opts);

  Bytes a(single.store().payload_size()), b(a.size());
  for (const uint64_t id : {5ull, 23ull, 61ull}) {
    ASSERT_TRUE(single.store().Read(id, a.data()).ok());
    const RecordId rid = id;
    ASSERT_TRUE(
        batched.store().MultiRead(std::span<const RecordId>(&rid, 1), b.data())
            .ok());
    EXPECT_EQ(a, b);
  }
  // The traces — per-block issue sequence included — must be identical.
  EXPECT_EQ(single.trace(), batched.trace());
  EXPECT_EQ(single.store().stats().level_probe_reads,
            batched.store().stats().level_probe_reads);
  EXPECT_EQ(single.store().stats().index_io, batched.store().stats().index_io);
}

INSTANTIATE_TEST_SUITE_P(ChargeIndexIo, BatchOfOneTest, ::testing::Bool());

// ---- multiset equivalence ------------------------------------------------

TEST(ObliviousBatchTraceTest, MultiReadTouchMultisetMatchesSequentialReads) {
  const ObliviousStoreOptions opts = BatchOptions(false);
  StoreUnderTrace seq(opts), batch(opts);

  const std::vector<RecordId> ids = {1, 9, 17, 33, 41, 57};
  Bytes out(seq.store().payload_size());
  for (const RecordId id : ids) {
    ASSERT_TRUE(seq.store().Read(id, out.data()).ok());
    EXPECT_EQ(out, ExpectedPayload(seq.store(), id));
  }
  Bytes outs(ids.size() * batch.store().payload_size());
  ASSERT_TRUE(batch.store().MultiRead(ids, outs.data()).ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(Bytes(outs.begin() + i * out.size(),
                    outs.begin() + (i + 1) * out.size()),
              ExpectedPayload(batch.store(), ids[i]))
        << "request " << i;
  }

  // Same number of touches in every level — the attacker sees k requests
  // cost one uniform touch per non-empty level either way.
  EXPECT_EQ(LevelTouchCounts(seq.trace(), opts),
            LevelTouchCounts(batch.trace(), opts));
  EXPECT_EQ(seq.trace().size(), batch.trace().size());
  EXPECT_EQ(seq.store().stats().level_probe_reads,
            batch.store().stats().level_probe_reads);
}

TEST(ObliviousBatchTraceTest, MultiWriteTouchMultisetMatchesSequentialWrites) {
  const ObliviousStoreOptions opts = BatchOptions(false);
  StoreUnderTrace seq(opts), batch(opts);

  const std::vector<RecordId> ids = {3, 12, 28, 45, 60};
  Bytes payloads(ids.size() * seq.store().payload_size());
  std::fill(payloads.begin(), payloads.end(), 0xab);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(
        seq.store().Write(ids[i], payloads.data() + i * seq.store().payload_size())
            .ok());
  }
  ASSERT_TRUE(batch.store().MultiWrite(ids, payloads.data()).ok());

  EXPECT_EQ(LevelTouchCounts(seq.trace(), opts),
            LevelTouchCounts(batch.trace(), opts));
  EXPECT_EQ(seq.trace().size(), batch.trace().size());

  // Both stores serve the new content back.
  Bytes out(batch.store().payload_size());
  for (const RecordId id : ids) {
    ASSERT_TRUE(batch.store().Read(id, out.data()).ok());
    EXPECT_EQ(out, Bytes(out.size(), 0xab));
  }
}

TEST(ObliviousBatchTraceTest, DuplicateIdsStillTouchEveryLevelPerRequest) {
  const ObliviousStoreOptions opts = BatchOptions(false);
  StoreUnderTrace probe(opts), batch(opts);

  // Reference: one miss costs one touch per non-empty level.
  Bytes out(probe.store().payload_size());
  ASSERT_TRUE(probe.store().Read(7, out.data()).ok());
  const uint64_t per_request = probe.trace().size();

  // A duplicated id is served from one decrypted copy, but its other
  // occurrences draw decoys in every level: the group still reads
  // exactly one slot per level per request, hiding the duplication.
  const std::vector<RecordId> ids = {7, 7, 7};
  Bytes outs(ids.size() * batch.store().payload_size());
  ASSERT_TRUE(batch.store().MultiRead(ids, outs.data()).ok());
  EXPECT_EQ(batch.trace().size(), ids.size() * per_request);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(Bytes(outs.begin() + i * out.size(),
                    outs.begin() + (i + 1) * out.size()),
              ExpectedPayload(batch.store(), 7));
  }
  EXPECT_EQ(batch.store().stats().user_reads, 3u);
}

// ---- charge_index_io amortization ---------------------------------------

TEST(ObliviousBatchTraceTest, IndexProbesAmortizeAcrossGroupUnderChargeIndexIo) {
  const ObliviousStoreOptions opts = BatchOptions(true);
  StoreUnderTrace seq(opts), batch(opts);

  const std::vector<RecordId> ids = {2, 18, 26, 39, 50, 63};
  const uint64_t k = ids.size();
  Bytes out(seq.store().payload_size());
  for (const RecordId id : ids) {
    ASSERT_TRUE(seq.store().Read(id, out.data()).ok());
  }
  Bytes outs(k * batch.store().payload_size());
  ASSERT_TRUE(batch.store().MultiRead(ids, outs.data()).ok());

  // Sequential: every request pays slot + index per non-empty level (2k
  // touches). Batched: the spilled index at the front of the level is
  // read once per pass and answers the whole group (k + 1 touches) — a
  // deterministic, data-independent shape, which is what lowers the
  // overhead factor. The slot-touch multiset itself is unchanged.
  const auto seq_counts = LevelTouchCounts(seq.trace(), opts);
  const auto batch_counts = LevelTouchCounts(batch.trace(), opts);
  ASSERT_EQ(seq_counts.size(), batch_counts.size());
  uint64_t non_empty = 0;
  for (size_t level = 0; level < seq_counts.size(); ++level) {
    if (seq_counts[level] == 0) {
      EXPECT_EQ(batch_counts[level], 0u) << "level " << level;
      continue;
    }
    ++non_empty;
    EXPECT_EQ(seq_counts[level], 2 * k) << "level " << level;
    EXPECT_EQ(batch_counts[level], k + 1) << "level " << level;
  }
  ASSERT_GT(non_empty, 0u);
  EXPECT_EQ(batch.store().stats().index_io, non_empty);
  EXPECT_EQ(batch.store().stats().probes_saved, non_empty * (k - 1));
  EXPECT_EQ(seq.store().stats().probes_saved, 0u);
  // Identical slot probes per level either way.
  EXPECT_EQ(seq.store().stats().level_probe_reads,
            batch.store().stats().level_probe_reads);
}

// ---- counters and failure modes -----------------------------------------

TEST(ObliviousBatchTraceTest, GroupCostsOneScanPass) {
  const ObliviousStoreOptions opts = BatchOptions(false);
  StoreUnderTrace s(opts);

  const std::vector<RecordId> ids = {4, 11, 19, 36, 44, 59};
  Bytes outs(ids.size() * s.store().payload_size());
  s.store().ResetStats();
  ASSERT_TRUE(s.store().MultiRead(ids, outs.data()).ok());
  EXPECT_EQ(s.store().stats().scan_passes, 1u);
  EXPECT_EQ(s.store().stats().batched_requests, ids.size());

  s.store().ResetStats();
  Bytes out(s.store().payload_size());
  for (const RecordId id : {6ull, 13ull, 21ull}) {
    ASSERT_TRUE(s.store().Read(id, out.data()).ok());
  }
  // Buffer hits aside, each single read that reaches the levels is its
  // own pass, and none of them count as batched.
  EXPECT_EQ(s.store().stats().scan_passes +
                s.store().stats().buffer_hits,
            3u);
  EXPECT_EQ(s.store().stats().batched_requests, 0u);
}

TEST(ObliviousBatchTraceTest, OversizedGroupChunksAtBufferSize) {
  const ObliviousStoreOptions opts = BatchOptions(false);
  StoreUnderTrace s(opts);

  std::vector<RecordId> ids(20);  // > B = 8: chunks of 8, 8, 4
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  Bytes outs(ids.size() * s.store().payload_size());
  s.store().ResetStats();
  ASSERT_TRUE(s.store().MultiRead(ids, outs.data()).ok());
  EXPECT_EQ(s.store().stats().scan_passes, 3u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(outs[i * s.store().payload_size()], static_cast<uint8_t>(ids[i]))
        << "request " << i;
  }
}

// ---- crypto-path independence -------------------------------------------

TEST(ObliviousBatchTraceTest, TraceByteIdenticalAcrossCryptoImpls) {
  // The accelerated kernels compute the same AES/SHA functions, so the
  // device-level trace — block ids, ordering, and the ciphertext a
  // disk-watching attacker records — must be bit-for-bit independent of
  // which implementation ran. The override scope covers construction:
  // ciphers latch their path at SetKey.
  const ObliviousStoreOptions opts = BatchOptions(false);
  auto drive = [&opts](StoreUnderTrace& s, Bytes* outs) {
    const std::vector<RecordId> reads = {2, 9, 31, 44};
    outs->resize(reads.size() * s.store().payload_size());
    ASSERT_TRUE(s.store().MultiRead(reads, outs->data()).ok());
    const std::vector<RecordId> writes = {5, 27, 50};
    Bytes payloads(writes.size() * s.store().payload_size(), 0xcd);
    ASSERT_TRUE(s.store().MultiWrite(writes, payloads.data()).ok());
    Bytes one(s.store().payload_size());
    ASSERT_TRUE(s.store().Read(27, one.data()).ok());
    outs->insert(outs->end(), one.begin(), one.end());
  };

  std::optional<StoreUnderTrace> accel, scalar;
  Bytes accel_out, scalar_out;
  accel.emplace(opts);
  drive(*accel, &accel_out);
  {
    crypto::ScopedCryptoImpl force(crypto::CryptoImpl::kScalar);
    scalar.emplace(opts);
    drive(*scalar, &scalar_out);
  }

  EXPECT_EQ(accel_out, scalar_out);
  EXPECT_EQ(accel->trace(), scalar->trace());
}

TEST(ObliviousBatchTraceTest, MissingIdFailsBeforeAnyIo) {
  const ObliviousStoreOptions opts = BatchOptions(false);
  StoreUnderTrace s(opts);
  const std::vector<RecordId> ids = {1, 2, 999};
  Bytes outs(ids.size() * s.store().payload_size());
  EXPECT_EQ(s.store().MultiRead(ids, outs.data()).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(s.trace().empty());
}

}  // namespace
}  // namespace steghide::oblivious
