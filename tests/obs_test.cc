// Observability layer coverage: registry exactness under concurrency,
// histogram percentiles against a reference sort, span nesting and
// attribution, Chrome-trace/metrics export schema, snapshotter pacing,
// and the leakage-neutrality pin — an instrumented store's
// attacker-visible device trace is bit-identical to an uninstrumented
// twin's.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "oblivious/oblivious_store.h"
#include "obs/metrics.h"
#include "obs/snapshotter.h"
#include "obs/trace_export.h"
#include "obs/trace_log.h"
#include "storage/mem_block_device.h"
#include "storage/trace_device.h"
#include "testing/rng.h"

namespace steghide::obs {
namespace {

// ---- CounterCell / Registry under concurrency ----------------------------

TEST(CounterCellTest, ConcurrentAddsSumExactly) {
  CounterCell cell;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cell] {
      for (uint64_t i = 0; i < kPerThread; ++i) cell.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cell.value(), kThreads * kPerThread);
}

TEST(CounterCellTest, SubtractIsModular) {
  CounterCell cell;
  cell.Add(10);
  cell.Subtract(3);
  EXPECT_EQ(cell.value(), 7u);
  cell.Subtract(7);
  EXPECT_EQ(cell.value(), 0u);
}

TEST(RegistryTest, SnapshotSeesConcurrentWriters) {
  // Readers polling Snapshot() while writers hammer the cell must only
  // ever see monotonically plausible values (never torn, never above
  // the true total) and the final snapshot must be exact. Run under
  // TSan this is also the data-race regression for the old plain-struct
  // stats designs.
  Registry registry;
  CounterCell cell;
  Registration reg(&registry);
  reg.Counter("hammer.count", &cell);

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = registry.Snapshot();
      const auto it = snap.find("hammer.count");
      ASSERT_NE(it, snap.end());
      const auto v = static_cast<uint64_t>(it->second);
      EXPECT_GE(v, last);
      EXPECT_LE(v, kWriters * kPerWriter);
      last = v;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&cell] {
      for (uint64_t i = 0; i < kPerWriter; ++i) cell.Increment();
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(registry.Snapshot().at("hammer.count"),
            static_cast<double>(kWriters * kPerWriter));
}

TEST(RegistryTest, LatchSurvivesUnregistration) {
  Registry registry;
  {
    CounterCell cell;
    Registration reg(&registry);
    reg.Counter("gone.count", &cell);
    cell.Add(42);
  }  // Registration released; Unregister latches the final value.
  const auto snap = registry.Snapshot();
  ASSERT_TRUE(snap.count("gone.count"));
  EXPECT_EQ(snap.at("gone.count"), 42.0);
}

TEST(RegistryTest, OwnedInstrumentsAndCallbacks) {
  Registry registry;
  CounterCell* c = registry.OwnedCounter("owned.count");
  c->Add(5);
  EXPECT_EQ(registry.OwnedCounter("owned.count"), c);  // create-or-get
  GaugeCell* g = registry.OwnedGauge("owned.gauge");
  g->Set(2.5);
  Registration reg(&registry);
  reg.Callback("derived.value", [] { return 7.0; });
  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.at("owned.count"), 5.0);
  EXPECT_EQ(snap.at("owned.gauge"), 2.5);
  EXPECT_EQ(snap.at("derived.value"), 7.0);
}

// ---- Histogram percentiles vs reference sort -----------------------------

TEST(HistogramCellTest, PercentilesTrackReferenceSort) {
  HistogramCell hist;
  steghide::Rng rng = testing::MakeTestRng();
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Mixed scales: microsecond-ish to multi-second virtual latencies.
    const double v =
        std::ldexp(1.0 + rng.Uniform(1000) / 1000.0,
                   static_cast<int>(rng.Uniform(20)) - 8);
    values.push_back(v);
    hist.Record(v);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(hist.count(), values.size());
  EXPECT_EQ(hist.min(), sorted.front());
  EXPECT_EQ(hist.max(), sorted.back());
  for (const double q : {10.0, 50.0, 90.0, 99.0}) {
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q / 100.0 * static_cast<double>(sorted.size())));
    const double ref = sorted[idx];
    // Log-linear buckets with 64 sub-buckets per octave: <= ~0.8%
    // relative error on the representative.
    EXPECT_NEAR(hist.Percentile(q), ref, ref * 0.01)
        << "q=" << q;
  }
  // Distribution endpoints are exact, not bucket midpoints.
  EXPECT_EQ(hist.Percentile(0), sorted.front());
  EXPECT_EQ(hist.Percentile(100), sorted.back());
}

TEST(HistogramCellTest, ConcurrentRecordsCountExactly) {
  HistogramCell hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(hist.min(), 1.0);
  EXPECT_EQ(hist.max(), static_cast<double>(kThreads));
}

// ---- Span nesting and attribution ----------------------------------------

TEST(TraceLogTest, SpanNestingAndAttributionGolden) {
  TraceLog log(64);
  double clock = 0.0;
  log.set_clock_fn([&clock] { return clock; });
  log.set_enabled(true);
  const uint32_t outer_track = log.RegisterTrack("store");
  const uint32_t inner_track = log.RegisterTrack("io");
  EXPECT_EQ(log.RegisterTrack("store"), outer_track);  // idempotent

  {
    ScopedSpan outer(&log, "store.scan", outer_track, {{"passes", 2}});
    clock = 10.0;
    {
      ScopedSpan inner(&log, "io.drain", inner_track, {{"reqs", 5}});
      clock = 15.0;
    }
    outer.AddArg("records", 7);
    clock = 25.0;
  }

  const auto events = log.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_STREQ(events[0].label(), "io.drain");
  EXPECT_EQ(events[0].track, inner_track);
  EXPECT_EQ(events[0].ts_ms, 10.0);
  EXPECT_EQ(events[0].dur_ms, 5.0);
  ASSERT_EQ(events[0].num_args, 1);
  EXPECT_STREQ(events[0].args[0].key, "reqs");
  EXPECT_EQ(events[0].args[0].value, 5);

  EXPECT_STREQ(events[1].label(), "store.scan");
  EXPECT_EQ(events[1].track, outer_track);
  EXPECT_EQ(events[1].ts_ms, 0.0);
  EXPECT_EQ(events[1].dur_ms, 25.0);
  ASSERT_EQ(events[1].num_args, 2);
  EXPECT_STREQ(events[1].args[0].key, "passes");
  EXPECT_EQ(events[1].args[0].value, 2);
  EXPECT_STREQ(events[1].args[1].key, "records");
  EXPECT_EQ(events[1].args[1].value, 7);
}

TEST(TraceLogTest, DisabledOrNullLogRecordsNothing) {
  TraceLog log(64);
  {
    ScopedSpan off(&log, "noop", 0);  // log exists but is disabled
    ScopedSpan null(nullptr, "noop", 0);
    EXPECT_FALSE(off.active());
    EXPECT_FALSE(null.active());
  }
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLogTest, BoundedCapacityCountsDrops) {
  TraceLog log(4);
  log.set_enabled(true);
  for (int i = 0; i < 10; ++i) log.Instant("tick", 0);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
}

TEST(TraceLogTest, AsyncIntervalsCarryIds) {
  TraceLog log(16);
  log.set_enabled(true);
  log.AsyncBegin("dispatch.request", 7, 0, {{"write", 0}});
  log.AsyncEnd("dispatch.request", 7, 0);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kAsyncBegin);
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kAsyncEnd);
  EXPECT_EQ(events[1].id, 7u);
}

// ---- Export schema -------------------------------------------------------

TEST(TraceExportTest, ChromeTraceSchemaRoundTrip) {
  TraceLog log(64);
  double clock = 0.0;
  log.set_clock_fn([&clock] { return clock; });
  log.set_enabled(true);
  const uint32_t track = log.RegisterTrack("store");
  {
    ScopedSpan span(&log, "store.scan", track, {{"passes", 3}});
    clock = 4.0;
  }
  log.Instant("store.install", track, {{"level", 2}});
  log.AsyncBegin("dispatch.request", 1, track);
  log.AsyncEnd("dispatch.request", 1, track);
  log.CounterSample("store.chain_pending_steps", 5.0);

  const std::string json = ChromeTraceJson(log);
  // Top-level schema.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // One thread_name metadata record per track (main + store).
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"store\""), std::string::npos);
  // Span: complete event, ts/dur in microseconds (4 virtual ms = 4000).
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"passes\":3"), std::string::npos);
  // Instant, async pair, counter sample.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness pin without a JSON
  // parser in the test toolchain).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExportTest, MetricsJsonExpandsHistograms) {
  Registry registry;
  CounterCell counter;
  HistogramCell hist;
  Registration reg(&registry);
  reg.Counter("io.reads", &counter);
  reg.Histogram("dispatcher.latency_ms", &hist);
  counter.Add(12);
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));

  const std::string json = MetricsJson(registry);
  EXPECT_NE(json.find("\"io.reads\": 12"), std::string::npos);
  for (const char* key :
       {"dispatcher.latency_ms.count", "dispatcher.latency_ms.mean",
        "dispatcher.latency_ms.p50", "dispatcher.latency_ms.p90",
        "dispatcher.latency_ms.p99", "dispatcher.latency_ms.max"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---- Snapshotter ---------------------------------------------------------

TEST(SnapshotterTest, SamplesAtIntervalWithPrefixFilter) {
  Registry registry;
  CounterCell wanted, unwanted;
  Registration reg(&registry);
  reg.Counter("store.user_reads", &wanted);
  reg.Counter("io.reads", &unwanted);
  wanted.Add(3);
  unwanted.Add(9);

  TraceLog log(64);
  double clock = 0.0;
  log.set_clock_fn([&clock] { return clock; });
  log.set_enabled(true);
  StatsSnapshotter snap(&registry, &log, /*interval_ms=*/10.0, {"store."});

  snap.MaybeSample();  // t=0: due immediately
  snap.MaybeSample();  // still inside the interval: no-op
  clock = 5.0;
  snap.MaybeSample();
  clock = 12.0;
  snap.MaybeSample();
  EXPECT_EQ(snap.samples(), 2u);

  size_t counter_events = 0;
  for (const TraceEvent& ev : log.events()) {
    ASSERT_EQ(ev.kind, TraceEvent::Kind::kCounter);
    EXPECT_EQ(ev.owned_name, "store.user_reads");
    EXPECT_EQ(ev.value, 3.0);
    ++counter_events;
  }
  EXPECT_EQ(counter_events, 2u);
}

// ---- Leakage neutrality --------------------------------------------------

oblivious::ObliviousStoreOptions TwinOptions(uint64_t seed) {
  constexpr uint64_t kB = 4, kN = 32;
  const uint64_t hierarchy = 2 * kN - 2 * kB;
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = kB;
  opts.capacity_blocks = kN;
  opts.partition_base = 0;
  opts.scratch_base = hierarchy;
  opts.shadow_base = hierarchy + kN;
  opts.deamortize_reorders = true;
  opts.reorder_step_blocks = 1;
  opts.drbg_seed = seed;
  return opts;
}

// Runs an identical op schedule against an instrumented and an
// uninstrumented twin; the attacker-visible device traces must be
// bit-identical — instrumentation only records, it never changes what
// the store touches.
TEST(LeakageNeutralityTest, InstrumentedTraceEqualsUninstrumentedTwin) {
  constexpr uint64_t kSeed = 61;
  const auto run = [](oblivious::ObliviousStoreOptions opts,
                      storage::TraceBlockDevice& trace_dev) {
    auto store = oblivious::ObliviousStore::Create(&trace_dev, opts);
    ASSERT_TRUE(store.ok());
    Bytes payload((*store)->payload_size());
    Bytes out((*store)->payload_size());
    steghide::Rng rng(kSeed + 1);
    for (uint64_t id = 0; id < 24; ++id) {
      std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(id));
      ASSERT_TRUE((*store)->Insert(id, payload.data()).ok());
    }
    for (int op = 0; op < 120; ++op) {
      const uint64_t id = rng.Uniform(24);
      if (rng.Bernoulli(0.3)) {
        std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(op));
        ASSERT_TRUE((*store)->Write(id, payload.data()).ok());
      } else {
        ASSERT_TRUE((*store)->Read(id, out.data()).ok());
      }
      if (op % 7 == 0) ASSERT_TRUE((*store)->DummyRead().ok());
    }
    bool more = true;
    while (more) ASSERT_TRUE((*store)->StepReorder(1u << 20, &more).ok());
  };

  const uint64_t device_blocks =
      2 * (2 * 32 - 2 * 4) + 32 + 8;  // hierarchy + shadow + scratch slack

  storage::MemBlockDevice plain_mem(device_blocks, 4096);
  storage::TraceBlockDevice plain_trace(&plain_mem);
  run(TwinOptions(kSeed), plain_trace);

  storage::MemBlockDevice obs_mem(device_blocks, 4096);
  storage::TraceBlockDevice obs_trace(&obs_mem);
  Registry registry;
  TraceLog log;
  log.set_enabled(true);
  oblivious::ObliviousStoreOptions instrumented = TwinOptions(kSeed);
  instrumented.registry = &registry;
  instrumented.trace = &log;
  run(instrumented, obs_trace);

  // Observability recorded plenty...
  EXPECT_GT(log.size(), 0u);
  EXPECT_GT(registry.Snapshot().at("store.user_reads"), 0.0);
  // ...and perturbed nothing: same ops, same blocks, same order.
  ASSERT_EQ(plain_trace.trace().size(), obs_trace.trace().size());
  EXPECT_TRUE(plain_trace.trace() == obs_trace.trace());
}

}  // namespace
}  // namespace steghide::obs
