#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "storage/disk_model.h"
#include "storage/file_block_device.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "testing/rng.h"
#include "testing/temp_dir.h"
#include "util/random.h"

namespace steghide::storage {
namespace {

// ---- MemBlockDevice ---------------------------------------------------

TEST(MemBlockDeviceTest, RoundTrip) {
  MemBlockDevice dev(8, 512);
  Bytes data(512, 0xab);
  ASSERT_TRUE(dev.WriteBlock(3, data.data()).ok());
  Bytes out(512);
  ASSERT_TRUE(dev.ReadBlock(3, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(MemBlockDeviceTest, ZeroInitialised) {
  MemBlockDevice dev(2, 64);
  Bytes out(64, 0xff);
  ASSERT_TRUE(dev.ReadBlock(1, out.data()).ok());
  EXPECT_EQ(out, Bytes(64, 0));
}

TEST(MemBlockDeviceTest, BoundsChecked) {
  MemBlockDevice dev(4, 64);
  Bytes buf(64);
  EXPECT_EQ(dev.ReadBlock(4, buf.data()).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.WriteBlock(100, buf.data()).code(), StatusCode::kOutOfRange);
}

TEST(MemBlockDeviceTest, BytesOverloadValidatesSize) {
  MemBlockDevice dev(4, 64);
  Bytes wrong(63);
  EXPECT_EQ(dev.WriteBlock(0, wrong).code(), StatusCode::kInvalidArgument);
  Bytes out;
  ASSERT_TRUE(dev.ReadBlock(0, out).ok());
  EXPECT_EQ(out.size(), 64u);
}

// ---- FileBlockDevice ----------------------------------------------------

class FileBlockDeviceTest : public steghide::testing::TempDirTest {
 protected:
  void SetUp() override { path_ = TempFile("vol.img"); }
  std::string path_;
};

TEST_F(FileBlockDeviceTest, CreateWriteReopenRead) {
  {
    auto dev = FileBlockDevice::Create(path_, 16, 512);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    Bytes data(512, 0x5a);
    ASSERT_TRUE(dev->WriteBlock(7, data.data()).ok());
    ASSERT_TRUE(dev->Flush().ok());
  }
  auto dev = FileBlockDevice::Open(path_, 512);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(dev->num_blocks(), 16u);
  Bytes out(512);
  ASSERT_TRUE(dev->ReadBlock(7, out.data()).ok());
  EXPECT_EQ(out, Bytes(512, 0x5a));
}

TEST_F(FileBlockDeviceTest, OpenMissingFails) {
  auto dev = FileBlockDevice::Open(path_ + ".nope", 512);
  EXPECT_FALSE(dev.ok());
}

TEST_F(FileBlockDeviceTest, BoundsChecked) {
  auto dev = FileBlockDevice::Create(path_, 4, 512);
  ASSERT_TRUE(dev.ok());
  Bytes buf(512);
  EXPECT_FALSE(dev->ReadBlock(4, buf.data()).ok());
}

// ---- DiskModel ------------------------------------------------------------

DiskModelParams TestParams() { return DiskModelParams{}; }

TEST(DiskModelTest, SequentialIsMuchCheaperThanRandom) {
  DiskModel model(TestParams(), 1 << 18, 4096);
  const double first = model.Access(1000);        // random (no position)
  const double second = model.Access(1001);       // sequential
  const double third = model.Access(200000);      // long seek
  EXPECT_GT(first, 20 * second);
  EXPECT_GT(third, 20 * second);
}

TEST(DiskModelTest, ClockAccumulates) {
  DiskModel model(TestParams(), 1024, 4096);
  EXPECT_DOUBLE_EQ(model.clock_ms(), 0.0);
  const double c1 = model.Access(10);
  const double c2 = model.Access(500);
  EXPECT_DOUBLE_EQ(model.clock_ms(), c1 + c2);
  model.AdvanceClock(5.0);
  EXPECT_DOUBLE_EQ(model.clock_ms(), c1 + c2 + 5.0);
}

TEST(DiskModelTest, SeekCostGrowsWithDistance) {
  DiskModel model(TestParams(), 1 << 20, 4096);
  (void)model.Access(0);
  const double near = model.PeekAccessCost(100);
  const double far = model.PeekAccessCost(1 << 19);
  EXPECT_LT(near, far);
}

TEST(DiskModelTest, AverageSeekCalibration) {
  // A seek across a third of the disk should cost about avg_seek +
  // rotational + transfer + overhead.
  DiskModelParams p;
  DiskModel model(p, 3 << 20, 4096);
  (void)model.Access(0);
  const double expected = p.controller_overhead_ms + p.avg_seek_ms +
                          0.5 * 60e3 / p.rpm +
                          4096.0 / (p.transfer_mb_per_s * 1e6) * 1e3;
  EXPECT_NEAR(model.PeekAccessCost(1 << 20), expected, 0.05);
}

TEST(DiskModelTest, SequentialRunCounting) {
  DiskModel model(TestParams(), 4096, 4096);
  (void)model.Access(5);
  (void)model.Access(6);
  (void)model.Access(7);
  (void)model.Access(100);
  EXPECT_EQ(model.sequential_accesses(), 2u);
  EXPECT_EQ(model.random_accesses(), 2u);
}

TEST(DiskModelTest, InvalidateHeadPosition) {
  DiskModel model(TestParams(), 4096, 4096);
  (void)model.Access(5);
  model.InvalidateHeadPosition();
  (void)model.Access(6);  // would have been sequential
  EXPECT_EQ(model.sequential_accesses(), 0u);
}

TEST(DiskModelTest, FullStrokeCap) {
  DiskModelParams p;
  DiskModel model(p, 1 << 24, 4096);
  (void)model.Access(0);
  const double worst = model.PeekAccessCost((1 << 24) - 1);
  EXPECT_LE(worst, p.controller_overhead_ms + p.full_stroke_ms +
                       0.5 * 60e3 / p.rpm + 1.0);
}

// ---- SimBlockDevice ---------------------------------------------------------

TEST(SimBlockDeviceTest, ForwardsAndCharges) {
  MemBlockDevice mem(128, 4096);
  SimBlockDevice sim(&mem, DiskModelParams{});
  Bytes data(4096, 0x11);
  ASSERT_TRUE(sim.WriteBlock(5, data.data()).ok());
  Bytes out(4096);
  ASSERT_TRUE(sim.ReadBlock(5, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(sim.clock_ms(), 0.0);
  EXPECT_EQ(sim.stats().reads, 1u);
  EXPECT_EQ(sim.stats().writes, 1u);
}

TEST(SimBlockDeviceTest, SequentialStatsTracked) {
  MemBlockDevice mem(128, 4096);
  SimBlockDevice sim(&mem, DiskModelParams{});
  Bytes buf(4096);
  for (uint64_t b = 0; b < 10; ++b) ASSERT_TRUE(sim.ReadBlock(b, buf.data()).ok());
  EXPECT_EQ(sim.stats().sequential, 9u);
  EXPECT_EQ(sim.stats().random, 1u);
}

TEST(SimBlockDeviceTest, SequentialScanFasterThanRandomScan) {
  MemBlockDevice mem(4096, 4096);
  Bytes buf(4096);

  SimBlockDevice seq(&mem, DiskModelParams{});
  for (uint64_t b = 0; b < 1000; ++b) ASSERT_TRUE(seq.ReadBlock(b, buf.data()).ok());

  SimBlockDevice rnd(&mem, DiskModelParams{});
  Rng rng = steghide::testing::MakeTestRng();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rnd.ReadBlock(rng.Uniform(4096), buf.data()).ok());
  }
  EXPECT_GT(rnd.clock_ms(), 10 * seq.clock_ms());
}

TEST(SimBlockDeviceTest, ErrorsAreNotCharged) {
  MemBlockDevice mem(4, 4096);
  SimBlockDevice sim(&mem, DiskModelParams{});
  Bytes buf(4096);
  EXPECT_FALSE(sim.ReadBlock(99, buf.data()).ok());
  EXPECT_DOUBLE_EQ(sim.clock_ms(), 0.0);
  EXPECT_EQ(sim.stats().reads, 0u);
}

// TraceBlockDevice and Snapshot have dedicated suites now:
// trace_device_test.cc and snapshot_test.cc.

}  // namespace
}  // namespace steghide::storage
