#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "storage/async/block_cache.h"
#include "storage/async/io_scheduler.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "storage/trace_device.h"
#include "testing/device_factory.h"
#include "testing/golden.h"
#include "testing/rng.h"

namespace steghide::storage {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;
using steghide::testing::MakeTestRng;
using steghide::testing::TracedMemDevice;

// ---- Vectored BlockDevice fallback ------------------------------------

TEST(VectoredIoTest, DefaultReadBlocksPreservesSubmissionOrder) {
  TracedMemDevice dev(16, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), /*seed=*/3).ok());
  const std::vector<uint64_t> ids = {9, 2, 9, 0};
  Bytes out;
  ASSERT_TRUE(dev.traced().ReadBlocks(ids, out).ok());
  ASSERT_EQ(out.size(), ids.size() * 512);
  for (size_t i = 0; i < ids.size(); ++i) {
    const Bytes expected = GoldenBlock(3, ids[i], 512);
    EXPECT_EQ(Bytes(out.begin() + i * 512, out.begin() + (i + 1) * 512),
              expected)
        << "block " << ids[i];
  }
  const IoTrace expected = {{TraceEvent::Kind::kRead, 9},
                            {TraceEvent::Kind::kRead, 2},
                            {TraceEvent::Kind::kRead, 9},
                            {TraceEvent::Kind::kRead, 0}};
  EXPECT_EQ(dev.trace(), expected);
}

TEST(VectoredIoTest, DefaultWriteBlocksPreservesSubmissionOrder) {
  TracedMemDevice dev(8, 512);
  const std::vector<uint64_t> ids = {5, 1, 6};
  Bytes data;
  for (uint64_t id : ids) {
    const Bytes block = GoldenBlock(7, id, 512);
    data.insert(data.end(), block.begin(), block.end());
  }
  ASSERT_TRUE(dev.traced().WriteBlocks(ids, data.data()).ok());
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 5},
                            {TraceEvent::Kind::kWrite, 1},
                            {TraceEvent::Kind::kWrite, 6}};
  EXPECT_EQ(dev.trace(), expected);
  for (uint64_t id : ids) {
    EXPECT_TRUE(
        steghide::testing::BlockEquals(dev.mem(), id, GoldenBlock(7, id, 512)));
  }
}

TEST(VectoredIoTest, OutOfRangeIdFailsWholeBatch) {
  MemBlockDevice mem(4, 512);
  const std::vector<uint64_t> ids = {1, 99};
  Bytes out;
  EXPECT_EQ(mem.ReadBlocks(ids, out).code(), StatusCode::kOutOfRange);
}

// ---- IoScheduler ------------------------------------------------------

TEST(IoSchedulerTest, FutureCompletesOnDrain) {
  MemBlockDevice mem(8, 512);
  IoScheduler scheduler(&mem);
  Bytes out(512);
  IoBatch batch;
  batch.Read(3, out.data());
  IoFuture future = scheduler.Submit(std::move(batch));
  EXPECT_FALSE(future.done());
  EXPECT_FALSE(scheduler.idle());
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_TRUE(future.done());
  EXPECT_TRUE(future.status().ok());
  EXPECT_TRUE(scheduler.idle());
}

TEST(IoSchedulerTest, DuplicateReadsCoalesceToOnePhysicalRead) {
  TracedMemDevice dev(16, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 11).ok());
  IoScheduler scheduler(&dev.traced());
  Bytes a(512), b(512), c(512);
  IoBatch batch;
  batch.Read(4, a.data());
  batch.Read(4, b.data());
  batch.Read(4, c.data());
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  EXPECT_EQ(dev.trace().size(), 1u);
  EXPECT_EQ(scheduler.stats().physical_reads, 1u);
  EXPECT_EQ(scheduler.stats().coalesced_reads, 2u);
  const Bytes expected = GoldenBlock(11, 4, 512);
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
  EXPECT_EQ(c, expected);
}

TEST(IoSchedulerTest, ElevatorIssuesReadsInAscendingOrder) {
  TracedMemDevice dev(64, 512);
  IoScheduler scheduler(&dev.traced());
  Bytes bufs(4 * 512);
  IoBatch batch;
  for (uint64_t id : {40, 7, 23, 2}) {
    batch.Read(id, bufs.data());  // content irrelevant here
  }
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  const IoTrace expected = {{TraceEvent::Kind::kRead, 2},
                            {TraceEvent::Kind::kRead, 7},
                            {TraceEvent::Kind::kRead, 23},
                            {TraceEvent::Kind::kRead, 40}};
  EXPECT_EQ(dev.trace(), expected);
}

TEST(IoSchedulerTest, PreservePatternIssuesVerbatim) {
  // Oblivious probe streams must reach the device with order and
  // duplicates intact: a coalesced duplicate decoy would be an
  // observably missing read.
  TracedMemDevice dev(64, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 17).ok());
  IoScheduler scheduler(&dev.traced());
  scheduler.set_preserve_pattern(true);
  Bytes bufs(4 * 512);
  IoBatch batch;
  for (size_t i = 0; uint64_t id : {40, 7, 7, 2}) {
    batch.Read(id, bufs.data() + (i++) * 512);
  }
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  const IoTrace expected = {{TraceEvent::Kind::kRead, 40},
                            {TraceEvent::Kind::kRead, 7},
                            {TraceEvent::Kind::kRead, 7},
                            {TraceEvent::Kind::kRead, 2}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_EQ(scheduler.stats().physical_reads, 4u);
  EXPECT_EQ(scheduler.stats().coalesced_reads, 0u);
  for (size_t i = 0; uint64_t id : {40, 7, 7, 2}) {
    EXPECT_EQ(Bytes(bufs.begin() + i * 512, bufs.begin() + (i + 1) * 512),
              GoldenBlock(17, id, 512))
        << "request " << i;
    ++i;
  }
}

TEST(IoSchedulerTest, PreservePatternKeepsBatchSubmissionOrder) {
  TracedMemDevice dev(64, 512);
  IoScheduler scheduler(&dev.traced());
  scheduler.set_preserve_pattern(true);
  Bytes b1(2 * 512), b2(2 * 512);
  IoBatch first, second;
  first.Read(30, b1.data());
  first.Read(31, b1.data() + 512);
  second.Read(5, b2.data());
  second.Read(6, b2.data() + 512);
  scheduler.Submit(std::move(first));
  scheduler.Submit(std::move(second));
  ASSERT_TRUE(scheduler.Drain().ok());
  const IoTrace expected = {{TraceEvent::Kind::kRead, 30},
                            {TraceEvent::Kind::kRead, 31},
                            {TraceEvent::Kind::kRead, 5},
                            {TraceEvent::Kind::kRead, 6}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_EQ(scheduler.stats().drains, 1u);
}

TEST(IoSchedulerTest, PreservePatternWritesStayInOrder) {
  TracedMemDevice dev(16, 512);
  IoScheduler scheduler(&dev.traced());
  scheduler.set_preserve_pattern(true);
  const Bytes a = GoldenBlock(19, 9, 512);
  const Bytes b = GoldenBlock(19, 3, 512);
  IoBatch batch;
  batch.Write(9, a.data());
  batch.Write(3, b.data());
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 9},
                            {TraceEvent::Kind::kWrite, 3}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 9, a));
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 3, b));
}

TEST(IoSchedulerTest, ReadAfterWriteForwardsPendingData) {
  TracedMemDevice dev(8, 512);
  IoScheduler scheduler(&dev.traced());
  const Bytes image = GoldenBlock(13, 5, 512);
  Bytes out(512);
  IoBatch batch;
  batch.Write(5, image.data());
  batch.Read(5, out.data());
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  EXPECT_EQ(out, image);
  EXPECT_EQ(scheduler.stats().forwarded_reads, 1u);
  // Only the write reached the device.
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 5}};
  EXPECT_EQ(dev.trace(), expected);
}

TEST(IoSchedulerTest, LaterWriteSupersedesEarlier) {
  TracedMemDevice dev(8, 512);
  IoScheduler scheduler(&dev.traced());
  const Bytes first = GoldenBlock(1, 2, 512);
  const Bytes second = GoldenBlock(2, 2, 512);
  Bytes between(512);
  IoBatch batch;
  batch.Write(2, first.data());
  batch.Read(2, between.data());  // sees the first image, forwarded
  batch.Write(2, second.data());
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  EXPECT_EQ(between, first);
  EXPECT_EQ(scheduler.stats().superseded_writes, 1u);
  EXPECT_EQ(dev.trace().size(), 1u);  // one physical write
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 2, second));
}

TEST(IoSchedulerTest, ReadsIssueBeforeWritesAcrossBatches) {
  TracedMemDevice dev(8, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 21).ok());
  IoScheduler scheduler(&dev.traced());
  Bytes out(512);
  const Bytes image = GoldenBlock(22, 3, 512);
  IoBatch b1;
  b1.Read(3, out.data());
  scheduler.Submit(std::move(b1));
  IoBatch b2;
  b2.Write(3, image.data());
  scheduler.Submit(std::move(b2));
  ASSERT_TRUE(scheduler.Drain().ok());
  // The read predates the write, so it must see the pre-drain content.
  EXPECT_EQ(out, GoldenBlock(21, 3, 512));
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 3, image));
}

TEST(IoSchedulerTest, ForwardedReadObservesLatestWriteAcrossBatches) {
  // Forwarding must track the newest pending image across *batches*, not
  // just within one: a write superseded by a later batch is unobservable
  // to any read submitted after the supersession.
  TracedMemDevice dev(8, 512);
  IoScheduler scheduler(&dev.traced());
  const Bytes first = GoldenBlock(31, 6, 512);
  const Bytes second = GoldenBlock(32, 6, 512);
  Bytes out(512);
  IoBatch b1, b2, b3;
  b1.Write(6, first.data());
  b2.Write(6, second.data());
  b3.Read(6, out.data());
  scheduler.Submit(std::move(b1));
  scheduler.Submit(std::move(b2));
  scheduler.Submit(std::move(b3));
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(out, second);
  EXPECT_EQ(scheduler.stats().forwarded_reads, 1u);
  EXPECT_EQ(scheduler.stats().superseded_writes, 1u);
  // One physical write of the surviving image; the read never hit disk.
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 6}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 6, second));
}

TEST(IoSchedulerTest, InterleavedWritesAndReadsForwardPerEpochAcrossBatches) {
  // write / read / write / read across four batches: each read observes
  // the image pending at its submission point, and only the final write
  // becomes physical.
  TracedMemDevice dev(8, 512);
  IoScheduler scheduler(&dev.traced());
  const Bytes first = GoldenBlock(41, 2, 512);
  const Bytes second = GoldenBlock(42, 2, 512);
  Bytes between(512), after(512);
  IoBatch b1, b2, b3, b4;
  b1.Write(2, first.data());
  b2.Read(2, between.data());
  b3.Write(2, second.data());
  b4.Read(2, after.data());
  scheduler.Submit(std::move(b1));
  scheduler.Submit(std::move(b2));
  scheduler.Submit(std::move(b3));
  scheduler.Submit(std::move(b4));
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(between, first);
  EXPECT_EQ(after, second);
  EXPECT_EQ(scheduler.stats().forwarded_reads, 2u);
  EXPECT_EQ(scheduler.stats().superseded_writes, 1u);
  EXPECT_EQ(scheduler.stats().physical_reads, 0u);
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 2}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 2, second));
}

/// Decorator that counts how the layer above vectorizes: every
/// ReadBlocks/WriteBlocks span length, forwarded verbatim to the inner
/// device (whose default implementation keeps per-block trace events).
class VectorSpanCountingDevice : public BlockDevice {
 public:
  explicit VectorSpanCountingDevice(BlockDevice* inner) : inner_(inner) {}

  Status ReadBlock(uint64_t id, uint8_t* out) override {
    read_spans.push_back(1);
    return inner_->ReadBlock(id, out);
  }
  Status WriteBlock(uint64_t id, const uint8_t* data) override {
    write_spans.push_back(1);
    return inner_->WriteBlock(id, data);
  }
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override {
    read_spans.push_back(ids.size());
    return inner_->ReadBlocks(ids, out);
  }
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override {
    write_spans.push_back(ids.size());
    return inner_->WriteBlocks(ids, data);
  }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }
  size_t block_size() const override { return inner_->block_size(); }
  Status Flush() override { return inner_->Flush(); }

  std::vector<size_t> read_spans;
  std::vector<size_t> write_spans;

 private:
  BlockDevice* inner_;
};

TEST(IoSchedulerTest, ElevatorFoldsContiguousRunsIntoVectoredCalls) {
  // Ascending elevator runs whose primary buffers sit contiguously fold
  // into one vectored device call; the per-block counters and the
  // attacker-visible trace are pinned unchanged.
  TracedMemDevice dev(64, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 23).ok());
  VectorSpanCountingDevice counted(&dev.traced());
  IoScheduler scheduler(&counted);

  // One arena with deliberate gaps, so the adjacency the fold keys on is
  // deterministic: the run occupies slots 0..3, the duplicate and the
  // stray sit past a hole at slot 4.
  Bytes arena(8 * 512);
  uint8_t* const run = arena.data();
  uint8_t* const dup = arena.data() + 5 * 512;
  uint8_t* const stray = arena.data() + 7 * 512;
  IoBatch batch;
  for (size_t i = 0; uint64_t id : {5, 6, 7, 8}) {
    batch.Read(id, run + (i++) * 512);
  }
  batch.Read(6, dup);    // coalesces into the run's block 6
  batch.Read(2, stray);  // ascending-first but not contiguous
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());

  // Two vectored calls: the stray single, then the 4-block run.
  EXPECT_EQ(counted.read_spans, (std::vector<size_t>{1, 4}));
  EXPECT_EQ(scheduler.stats().physical_reads, 5u);
  EXPECT_EQ(scheduler.stats().coalesced_reads, 1u);
  const IoTrace expected = {{TraceEvent::Kind::kRead, 2},
                            {TraceEvent::Kind::kRead, 5},
                            {TraceEvent::Kind::kRead, 6},
                            {TraceEvent::Kind::kRead, 7},
                            {TraceEvent::Kind::kRead, 8}};
  EXPECT_EQ(dev.trace(), expected);
  for (size_t i = 0; uint64_t id : {5, 6, 7, 8}) {
    EXPECT_EQ(Bytes(run + i * 512, run + (i + 1) * 512),
              GoldenBlock(23, id, 512));
    ++i;
  }
  EXPECT_EQ(Bytes(dup, dup + 512), GoldenBlock(23, 6, 512));
  EXPECT_EQ(Bytes(stray, stray + 512), GoldenBlock(23, 2, 512));

  // Same shape on the write side: images in slots 0..2, the lone write's
  // image past a hole at slot 3.
  dev.traced().ClearTrace();
  Bytes warena(5 * 512);
  for (size_t i = 0; uint64_t id : {10, 11, 12}) {
    const Bytes block = GoldenBlock(29, id, 512);
    std::copy(block.begin(), block.end(), warena.begin() + (i++) * 512);
  }
  const Bytes lone_image = GoldenBlock(29, 3, 512);
  std::copy(lone_image.begin(), lone_image.end(),
            warena.begin() + 4 * 512);
  IoBatch wbatch;
  for (size_t i = 0; uint64_t id : {10, 11, 12}) {
    wbatch.Write(id, warena.data() + (i++) * 512);
  }
  wbatch.Write(3, warena.data() + 4 * 512);
  ASSERT_TRUE(scheduler.Run(std::move(wbatch)).ok());
  EXPECT_EQ(counted.write_spans, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(scheduler.stats().physical_writes, 4u);
  const IoTrace wexpected = {{TraceEvent::Kind::kWrite, 3},
                             {TraceEvent::Kind::kWrite, 10},
                             {TraceEvent::Kind::kWrite, 11},
                             {TraceEvent::Kind::kWrite, 12}};
  EXPECT_EQ(dev.trace(), wexpected);
  for (uint64_t id : {3, 10, 11, 12}) {
    EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), id,
                                               GoldenBlock(29, id, 512)));
  }
}

TEST(IoSchedulerTest, PreservePatternFoldsContiguousRunsWithoutTraceChange) {
  // The verbatim path folds contiguous same-op runs too — including
  // duplicate probe reads, which must stay physically visible.
  TracedMemDevice dev(64, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 37).ok());
  VectorSpanCountingDevice counted(&dev.traced());
  IoScheduler scheduler(&counted);
  scheduler.set_preserve_pattern(true);

  Bytes bufs(4 * 512);
  IoBatch batch;
  for (size_t i = 0; uint64_t id : {40, 7, 7, 2}) {
    batch.Read(id, bufs.data() + (i++) * 512);
  }
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  // One vectored call carrying the whole probe stream, duplicate intact.
  EXPECT_EQ(counted.read_spans, (std::vector<size_t>{4}));
  EXPECT_EQ(scheduler.stats().physical_reads, 4u);
  EXPECT_EQ(scheduler.stats().coalesced_reads, 0u);
  const IoTrace expected = {{TraceEvent::Kind::kRead, 40},
                            {TraceEvent::Kind::kRead, 7},
                            {TraceEvent::Kind::kRead, 7},
                            {TraceEvent::Kind::kRead, 2}};
  EXPECT_EQ(dev.trace(), expected);
  for (size_t i = 0; uint64_t id : {40, 7, 7, 2}) {
    EXPECT_EQ(Bytes(bufs.begin() + i * 512, bufs.begin() + (i + 1) * 512),
              GoldenBlock(37, id, 512));
    ++i;
  }
}

TEST(IoSchedulerTest, ErrorFailsAllFuturesInWindow) {
  MemBlockDevice mem(4, 512);
  IoScheduler scheduler(&mem);
  Bytes out(512);
  IoBatch ok_batch;
  ok_batch.Read(1, out.data());
  IoBatch bad_batch;
  bad_batch.Read(99, out.data());
  IoFuture f1 = scheduler.Submit(std::move(ok_batch));
  IoFuture f2 = scheduler.Submit(std::move(bad_batch));
  EXPECT_FALSE(scheduler.Drain().ok());
  EXPECT_TRUE(f1.done());
  EXPECT_TRUE(f2.done());
  EXPECT_EQ(f1.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(f2.status().code(), StatusCode::kOutOfRange);
}

TEST(IoSchedulerTest, ElevatorReducesVirtualTimeOnSimDisk) {
  MemBlockDevice mem(1 << 14, 4096);
  Rng rng = MakeTestRng();
  std::vector<uint64_t> ids(128);
  for (uint64_t& id : ids) id = rng.Uniform(mem.num_blocks());
  Bytes out(ids.size() * 4096);

  SimBlockDevice direct(&mem, DiskModelParams{});
  ASSERT_TRUE(direct.ReadBlocks(ids, out.data()).ok());

  SimBlockDevice scheduled(&mem, DiskModelParams{});
  IoScheduler scheduler(&scheduled);
  IoBatch batch;
  for (size_t i = 0; i < ids.size(); ++i) {
    batch.Read(ids[i], out.data() + i * 4096);
  }
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  EXPECT_LT(scheduled.clock_ms(), direct.clock_ms());
}

// ---- BlockCache -------------------------------------------------------

TEST(BlockCacheTest, RepeatedReadHitsWithoutPhysicalIo) {
  TracedMemDevice dev(32, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 5).ok());
  BlockCache cache(&dev.traced(), BlockCacheOptions{16, 1, false});
  Bytes out(512);
  ASSERT_TRUE(cache.ReadBlock(7, out.data()).ok());
  ASSERT_TRUE(cache.ReadBlock(7, out.data()).ok());
  ASSERT_TRUE(cache.ReadBlock(7, out.data()).ok());
  EXPECT_EQ(out, GoldenBlock(5, 7, 512));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(dev.trace().size(), 1u);  // one physical read
}

TEST(BlockCacheTest, LruEvictsColdestBlock) {
  MemBlockDevice mem(32, 512);
  ASSERT_TRUE(FillGolden(mem, 9).ok());
  BlockCache cache(&mem, BlockCacheOptions{2, 1, false});
  Bytes out(512);
  ASSERT_TRUE(cache.ReadBlock(1, out.data()).ok());
  ASSERT_TRUE(cache.ReadBlock(2, out.data()).ok());
  ASSERT_TRUE(cache.ReadBlock(1, out.data()).ok());  // 1 now hotter than 2
  ASSERT_TRUE(cache.ReadBlock(3, out.data()).ok());  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BlockCacheTest, WriteThroughReachesBackingImmediately) {
  TracedMemDevice dev(16, 512);
  BlockCache cache(&dev.traced(), BlockCacheOptions{8, 1, false});
  const Bytes image = GoldenBlock(2, 4, 512);
  ASSERT_TRUE(cache.WriteBlock(4, image.data()).ok());
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 4}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 4, image));
  // The written block is immediately readable from cache.
  Bytes out(512);
  ASSERT_TRUE(cache.ReadBlock(4, out.data()).ok());
  EXPECT_EQ(out, image);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BlockCacheTest, WriteBackDefersUntilFlush) {
  TracedMemDevice dev(16, 512);
  BlockCache cache(&dev.traced(), BlockCacheOptions{8, 1, true});
  const Bytes image = GoldenBlock(3, 6, 512);
  ASSERT_TRUE(cache.WriteBlock(6, image.data()).ok());
  EXPECT_TRUE(dev.trace().empty());  // nothing physical yet
  Bytes out(512);
  ASSERT_TRUE(cache.ReadBlock(6, out.data()).ok());
  EXPECT_EQ(out, image);
  ASSERT_TRUE(cache.Flush().ok());
  const IoTrace expected = {{TraceEvent::Kind::kWrite, 6}};
  EXPECT_EQ(dev.trace(), expected);
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 6, image));
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(BlockCacheTest, WriteBackEvictionWritesDirtyVictim) {
  MemBlockDevice mem(16, 512);
  BlockCache cache(&mem, BlockCacheOptions{1, 1, true});
  const Bytes first = GoldenBlock(4, 0, 512);
  const Bytes second = GoldenBlock(4, 1, 512);
  ASSERT_TRUE(cache.WriteBlock(0, first.data()).ok());
  ASSERT_TRUE(cache.WriteBlock(1, second.data()).ok());  // evicts dirty 0
  EXPECT_TRUE(steghide::testing::BlockEquals(mem, 0, first));
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BlockCacheTest, WriteBackBoundsChecksBeforeCaching) {
  MemBlockDevice mem(4, 512);
  BlockCache cache(&mem, BlockCacheOptions{8, 1, true});
  const Bytes image(512, 0xee);
  EXPECT_EQ(cache.WriteBlock(99, image.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(cache.Contains(99));
}

TEST(BlockCacheTest, InvalidateRefusesWhileDirty) {
  MemBlockDevice mem(8, 512);
  BlockCache cache(&mem, BlockCacheOptions{8, 1, true});
  const Bytes image(512, 0x21);
  ASSERT_TRUE(cache.WriteBlock(2, image.data()).ok());
  EXPECT_EQ(cache.Invalidate().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(cache.Invalidate().ok());
  EXPECT_EQ(cache.cached_blocks(), 0u);
}

TEST(BlockCacheTest, VectoredReadFetchesOnlyDistinctMisses) {
  TracedMemDevice dev(32, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 6).ok());
  BlockCache cache(&dev.traced(), BlockCacheOptions{16, 2, false});
  Bytes out(512);
  ASSERT_TRUE(cache.ReadBlock(10, out.data()).ok());  // warm one block
  dev.traced().ClearTrace();

  const std::vector<uint64_t> ids = {10, 11, 11, 12, 10};
  Bytes batch_out;
  ASSERT_TRUE(cache.ReadBlocks(ids, batch_out).ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(Bytes(batch_out.begin() + i * 512,
                    batch_out.begin() + (i + 1) * 512),
              GoldenBlock(6, ids[i], 512))
        << "position " << i;
  }
  // 10 was cached; 11 (twice) and 12 miss but fetch once each.
  const IoTrace expected = {{TraceEvent::Kind::kRead, 11},
                            {TraceEvent::Kind::kRead, 12}};
  EXPECT_EQ(dev.trace(), expected);
}

TEST(BlockCacheTest, ShardedCacheKeepsTotalCapacity) {
  MemBlockDevice mem(256, 512);
  ASSERT_TRUE(FillGolden(mem, 8).ok());
  BlockCache cache(&mem, BlockCacheOptions{32, 4, false});
  Bytes out(512);
  for (uint64_t b = 0; b < 200; ++b) {
    ASSERT_TRUE(cache.ReadBlock(b, out.data()).ok());
  }
  // Per-shard budget is capacity/shards; the total can never exceed it.
  EXPECT_LE(cache.cached_blocks(), 32u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// ---- Trace composition (attacker-visible semantics) -------------------

// The paper's traffic attacker sees post-cache physical I/O: with the
// trace *below* the cache, repeated logical reads leave one event.
TEST(TraceCompositionTest, TraceUnderCacheRecordsPhysicalIoOnly) {
  TracedMemDevice dev(16, 512);
  ASSERT_TRUE(FillGolden(dev.mem(), 12).ok());
  BlockCache cache(&dev.traced(), BlockCacheOptions{8, 1, false});
  Bytes out(512);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cache.ReadBlock(3, out.data()).ok());
  }
  const IoTrace expected = {{TraceEvent::Kind::kRead, 3}};
  EXPECT_EQ(dev.trace(), expected);
}

// With the trace *above* the cache, the same workload records every
// logical request — the composition tests pin both directions so the
// distinction cannot silently flip.
TEST(TraceCompositionTest, TraceOverCacheRecordsLogicalRequests) {
  MemBlockDevice mem(16, 512);
  ASSERT_TRUE(FillGolden(mem, 12).ok());
  BlockCache cache(&mem, BlockCacheOptions{8, 1, false});
  TraceBlockDevice traced(&cache);
  Bytes out(512);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(traced.ReadBlock(3, out.data()).ok());
  }
  EXPECT_EQ(traced.trace().size(), 5u);
  EXPECT_EQ(cache.stats().hits, 4u);
}

// Full decorator stack: cache over trace over sim. The sim's counters
// and the trace must agree — both describe the physical stream.
TEST(TraceCompositionTest, CacheTraceSimStackAgreesOnPhysicalCount) {
  MemBlockDevice mem(64, 4096);
  SimBlockDevice sim(&mem, DiskModelParams{});
  TraceBlockDevice traced(&sim);
  BlockCache cache(&traced, BlockCacheOptions{16, 2, false});
  Rng rng = MakeTestRng();
  Bytes out(4096);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache.ReadBlock(rng.Uniform(32), out.data()).ok());
  }
  EXPECT_EQ(traced.trace().size(), sim.stats().total_ops());
  EXPECT_EQ(traced.trace().size(), cache.stats().misses);
  EXPECT_LT(sim.stats().total_ops(), 100u);  // the cache absorbed repeats
}

// The cache admits true multi-threaded callers over a NON-thread-safe
// backing device: shard locks guard the LRU/stats state and the internal
// backing mutex serializes misses, write-through writes and eviction
// write-backs. MemBlockDevice's debug-mode SerialCallChecker aborts the
// test if any two backing calls ever overlap, and TSan (tsan preset)
// checks the shard state. Small capacity forces constant eviction
// traffic through every path.
TEST(BlockCacheTest, ThreadedAccessStaysCoherentOverSerialBacking) {
  MemBlockDevice backing(256, 512);
  BlockCacheOptions options;
  options.capacity_blocks = 32;  // far below the working set: evictions
  options.shards = 4;
  options.write_back = true;
  BlockCache cache(&backing, options);

  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 300;
  constexpr uint64_t kBlocksPerThread = 64;  // disjoint ranges per thread
  std::vector<std::thread> threads;
  std::vector<uint8_t> failed(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto rng = MakeTestRng(900 + t);
      const uint64_t base = t * kBlocksPerThread;
      std::vector<uint8_t> version(kBlocksPerThread, 0);
      Bytes data(cache.block_size());
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const uint64_t offset = rng.Uniform(kBlocksPerThread);
        if (rng.Bernoulli(0.5)) {
          ++version[offset];
          std::fill(data.begin(), data.end(),
                    static_cast<uint8_t>(t * 16 + version[offset]));
          if (!cache.WriteBlock(base + offset, data.data()).ok()) {
            failed[t] = 1;
            return;
          }
        } else if (version[offset] != 0) {
          if (!cache.ReadBlock(base + offset, data.data()).ok() ||
              data[0] != static_cast<uint8_t>(t * 16 + version[offset])) {
            failed[t] = 1;
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failed[t], 0) << "thread " << t;
  }

  // Flush pushes every surviving dirty block; the backing then holds each
  // thread's latest version for every block it ever wrote.
  ASSERT_TRUE(cache.Flush().ok());
  const BlockCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.writebacks, 0u);
}

}  // namespace
}  // namespace steghide::storage
