#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "stegfs/bitmap.h"
#include "stegfs/block_codec.h"
#include "stegfs/format.h"
#include "stegfs/header.h"
#include "stegfs/keys.h"
#include "stegfs/stegfs_core.h"
#include "storage/mem_block_device.h"

namespace steghide::stegfs {
namespace {

// ---- FileAccessKey ----------------------------------------------------

TEST(KeysTest, RandomFaksAreDistinct) {
  crypto::HashDrbg drbg(uint64_t{1});
  const auto a = FileAccessKey::Random(drbg, 1000);
  const auto b = FileAccessKey::Random(drbg, 1000);
  EXPECT_LT(a.header_location, 1000u);
  EXPECT_NE(a.header_key, b.header_key);
  EXPECT_NE(a.content_key, b.content_key);
}

TEST(KeysTest, PassphraseDerivationIsStable) {
  const auto a = FileAccessKey::FromPassphrase("secret", "/vault/a", 4096);
  const auto b = FileAccessKey::FromPassphrase("secret", "/vault/a", 4096);
  const auto c = FileAccessKey::FromPassphrase("secret", "/vault/b", 4096);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.header_key, c.header_key);
}

TEST(KeysTest, LocationCandidatesDiffer) {
  std::set<uint64_t> locs;
  for (uint64_t i = 0; i < 8; ++i) {
    locs.insert(
        FileAccessKey::DeriveLocationCandidate("p", "/f", i, 1 << 20));
  }
  EXPECT_GT(locs.size(), 6u);  // collisions possible but rare
}

TEST(KeysTest, SerializeRoundTrip) {
  crypto::HashDrbg drbg(uint64_t{2});
  const auto fak = FileAccessKey::Random(drbg, 123456);
  const auto back = FileAccessKey::Deserialize(fak.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fak);
}

TEST(KeysTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FileAccessKey::Deserialize("").ok());
  EXPECT_FALSE(FileAccessKey::Deserialize("12:abcd").ok());
  EXPECT_FALSE(FileAccessKey::Deserialize("x:aa:bb").ok());
  EXPECT_FALSE(FileAccessKey::Deserialize("5:zz:zz").ok());
}

TEST(KeysTest, DecoyKeyKeepsHeaderComponents) {
  crypto::HashDrbg drbg(uint64_t{3});
  const auto fak = FileAccessKey::Random(drbg, 1000);
  const auto decoy = fak.WithDecoyContentKey(drbg);
  EXPECT_EQ(decoy.header_location, fak.header_location);
  EXPECT_EQ(decoy.header_key, fak.header_key);
  EXPECT_NE(decoy.content_key, fak.content_key);
}

// ---- BlockBitmap --------------------------------------------------------

TEST(BitmapTest, MarkAndCount) {
  BlockBitmap bm(100);
  EXPECT_EQ(bm.data_count(), 0u);
  EXPECT_EQ(bm.dummy_count(), 100u);
  bm.MarkData(5);
  bm.MarkData(64);
  bm.MarkData(5);  // idempotent
  EXPECT_EQ(bm.data_count(), 2u);
  EXPECT_TRUE(bm.IsData(5));
  EXPECT_TRUE(bm.IsDummy(6));
  bm.MarkDummy(5);
  EXPECT_EQ(bm.data_count(), 1u);
  EXPECT_TRUE(bm.IsDummy(5));
}

TEST(BitmapTest, Utilization) {
  BlockBitmap bm(10);
  for (uint64_t i = 0; i < 4; ++i) bm.MarkData(i);
  EXPECT_DOUBLE_EQ(bm.utilization(), 0.4);
}

TEST(BitmapTest, SerializeRoundTrip) {
  BlockBitmap bm(130);  // crosses word boundaries
  bm.MarkData(0);
  bm.MarkData(63);
  bm.MarkData(64);
  bm.MarkData(129);
  const auto restored = BlockBitmap::Deserialize(bm.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_blocks(), 130u);
  EXPECT_EQ(restored->data_count(), 4u);
  EXPECT_TRUE(restored->IsData(129));
  EXPECT_TRUE(restored->IsDummy(128));
}

TEST(BitmapTest, DeserializeRejectsTruncated) {
  EXPECT_FALSE(BlockBitmap::Deserialize(Bytes{1, 2}).ok());
  BlockBitmap bm(64);
  Bytes ser = bm.Serialize();
  ser.pop_back();
  EXPECT_FALSE(BlockBitmap::Deserialize(ser).ok());
}

// ---- BlockCodec ------------------------------------------------------------

class BlockCodecTest : public ::testing::Test {
 protected:
  BlockCodecTest() : codec_(4096), drbg_(uint64_t{10}) {
    EXPECT_TRUE(cipher_.SetKey(drbg_.Generate(16)).ok());
  }
  BlockCodec codec_;
  crypto::HashDrbg drbg_;
  crypto::CbcCipher cipher_;
};

TEST_F(BlockCodecTest, SealOpenRoundTrip) {
  const Bytes payload = drbg_.Generate(codec_.payload_size());
  Bytes block(codec_.block_size());
  ASSERT_TRUE(codec_.Seal(cipher_, drbg_, payload.data(), block.data()).ok());
  Bytes back(codec_.payload_size());
  ASSERT_TRUE(codec_.Open(cipher_, block.data(), back.data()).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(BlockCodecTest, SealsDiffer) {
  const Bytes payload(codec_.payload_size(), 0x00);
  Bytes b1(codec_.block_size()), b2(codec_.block_size());
  ASSERT_TRUE(codec_.Seal(cipher_, drbg_, payload.data(), b1.data()).ok());
  ASSERT_TRUE(codec_.Seal(cipher_, drbg_, payload.data(), b2.data()).ok());
  EXPECT_NE(b1, b2);  // fresh IV each time
}

TEST_F(BlockCodecTest, RefreshPreservesPlaintextChangesCiphertext) {
  const Bytes payload = drbg_.Generate(codec_.payload_size());
  Bytes block(codec_.block_size());
  ASSERT_TRUE(codec_.Seal(cipher_, drbg_, payload.data(), block.data()).ok());
  const Bytes before = block;
  ASSERT_TRUE(codec_.Refresh(cipher_, drbg_, block.data()).ok());
  EXPECT_NE(block, before);
  // Every 16-byte unit must change — the dummy-update indistinguishability
  // property.
  for (size_t off = 0; off < block.size(); off += 16) {
    EXPECT_NE(memcmp(block.data() + off, before.data() + off, 16), 0);
  }
  Bytes back(codec_.payload_size());
  ASSERT_TRUE(codec_.Open(cipher_, block.data(), back.data()).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(BlockCodecTest, RandomizeFillsWholeBlock) {
  Bytes block(codec_.block_size(), 0);
  codec_.Randomize(drbg_, block.data());
  EXPECT_NE(block, Bytes(codec_.block_size(), 0));
}

TEST_F(BlockCodecTest, BatchSealEqualsSequentialSeals) {
  // A SealBlocks batch must be byte-for-byte what n single Seals produce
  // from the same DRBG position — including the IVs, i.e. the batch
  // consumes the stream exactly as the sequential path would.
  constexpr size_t kN = 71;  // crosses the internal chain-chunk boundary
  crypto::HashDrbg payload_rng(uint64_t{40});
  const Bytes payloads = payload_rng.Generate(kN * codec_.payload_size());

  crypto::HashDrbg drbg_a(uint64_t{41}), drbg_b(uint64_t{41});
  Bytes batch(kN * codec_.block_size()), single(kN * codec_.block_size());
  ASSERT_TRUE(
      codec_.SealBlocks(cipher_, drbg_a, payloads.data(), kN, batch.data())
          .ok());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(codec_.Seal(cipher_, drbg_b,
                            payloads.data() + i * codec_.payload_size(),
                            single.data() + i * codec_.block_size())
                    .ok());
  }
  EXPECT_EQ(batch, single);

  // OpenBlocks (contiguous) and OpenScatter (pointer-indexed, reversed
  // order) both recover every payload.
  Bytes back(kN * codec_.payload_size());
  ASSERT_TRUE(
      codec_.OpenBlocks(cipher_, batch.data(), kN, back.data()).ok());
  EXPECT_EQ(back, payloads);

  std::vector<const uint8_t*> blocks(kN);
  std::vector<uint8_t*> outs(kN);
  Bytes scattered(kN * codec_.payload_size());
  for (size_t i = 0; i < kN; ++i) {
    blocks[i] = batch.data() + (kN - 1 - i) * codec_.block_size();
    outs[i] = scattered.data() + (kN - 1 - i) * codec_.payload_size();
  }
  ASSERT_TRUE(codec_.OpenScatter(cipher_, blocks, outs).ok());
  EXPECT_EQ(scattered, payloads);
}

TEST_F(BlockCodecTest, RefreshBlocksPreservesPlaintextWithScratchReuse) {
  constexpr size_t kN = 5;
  const Bytes payloads = drbg_.Generate(kN * codec_.payload_size());
  Bytes blocks(kN * codec_.block_size());
  ASSERT_TRUE(
      codec_.SealBlocks(cipher_, drbg_, payloads.data(), kN, blocks.data())
          .ok());
  const Bytes before = blocks;
  Bytes scratch;
  ASSERT_TRUE(
      codec_.RefreshBlocks(cipher_, drbg_, blocks.data(), kN, &scratch).ok());
  EXPECT_NE(blocks, before);
  Bytes back(kN * codec_.payload_size());
  ASSERT_TRUE(codec_.OpenBlocks(cipher_, blocks.data(), kN, back.data()).ok());
  EXPECT_EQ(back, payloads);
  // Scratch sized once; a second refresh reuses it without regrowing.
  const size_t cap = scratch.capacity();
  ASSERT_TRUE(
      codec_.RefreshBlocks(cipher_, drbg_, blocks.data(), kN, &scratch).ok());
  EXPECT_EQ(scratch.capacity(), cap);
}

TEST_F(BlockCodecTest, TrafficCountersAdvance) {
  const stegfs::CryptoTrafficSnapshot before = GlobalCryptoTraffic();
  constexpr size_t kN = 3;
  const Bytes payloads = drbg_.Generate(kN * codec_.payload_size());
  Bytes blocks(kN * codec_.block_size());
  ASSERT_TRUE(
      codec_.SealBlocks(cipher_, drbg_, payloads.data(), kN, blocks.data())
          .ok());
  const stegfs::CryptoTrafficSnapshot after = GlobalCryptoTraffic();
  EXPECT_EQ(after.blocks - before.blocks, kN);
  EXPECT_EQ(after.bytes - before.bytes, kN * codec_.payload_size());
  EXPECT_EQ(after.batches - before.batches, 1u);
}

// ---- header serialization ----------------------------------------------------

TEST(HeaderTest, IndirectNeededBoundaries) {
  const size_t bs = 4096;
  const uint64_t per = PtrsPerIndirect(bs);
  EXPECT_EQ(HiddenFile::IndirectNeeded(0, bs), 0u);
  EXPECT_EQ(HiddenFile::IndirectNeeded(kNumDirectPtrs, bs), 0u);
  EXPECT_EQ(HiddenFile::IndirectNeeded(kNumDirectPtrs + 1, bs), 1u);
  EXPECT_EQ(HiddenFile::IndirectNeeded(kNumDirectPtrs + per, bs), 1u);
  EXPECT_EQ(HiddenFile::IndirectNeeded(kNumDirectPtrs + per + 1, bs), 2u);
}

TEST(HeaderTest, SerializeParseRoundTripDirectOnly) {
  HiddenFile file;
  file.file_size = 1234567;
  for (uint64_t i = 0; i < 10; ++i) file.block_ptrs.push_back(100 + i * 3);

  Bytes payload(PayloadSize(4096));
  SerializeHeader(file, 4096, payload.data());

  HiddenFile back;
  ASSERT_TRUE(ParseHeader(payload.data(), 4096, &back).ok());
  EXPECT_EQ(back.file_size, file.file_size);
  EXPECT_EQ(back.block_ptrs, file.block_ptrs);
  EXPECT_TRUE(back.indirect_locs.empty());
}

TEST(HeaderTest, SerializeParseRoundTripWithIndirects) {
  const size_t bs = 4096;
  const uint64_t blocks = kNumDirectPtrs + PtrsPerIndirect(bs) + 7;
  HiddenFile file;
  file.file_size = blocks * PayloadSize(bs);
  for (uint64_t i = 0; i < blocks; ++i) file.block_ptrs.push_back(i * 2 + 1);
  file.indirect_locs = {555, 777};

  Bytes header(PayloadSize(bs));
  SerializeHeader(file, bs, header.data());
  Bytes ind0(PayloadSize(bs)), ind1(PayloadSize(bs));
  SerializeIndirect(file, 0, bs, ind0.data());
  SerializeIndirect(file, 1, bs, ind1.data());

  HiddenFile back;
  ASSERT_TRUE(ParseHeader(header.data(), bs, &back).ok());
  EXPECT_EQ(back.indirect_locs, file.indirect_locs);
  ParseIndirect(ind0.data(), 0, bs, &back);
  ParseIndirect(ind1.data(), 1, bs, &back);
  EXPECT_EQ(back.block_ptrs, file.block_ptrs);
}

TEST(HeaderTest, ParseRejectsBadMagic) {
  Bytes payload(PayloadSize(4096), 0);
  HiddenFile out;
  EXPECT_EQ(ParseHeader(payload.data(), 4096, &out).code(),
            StatusCode::kPermissionDenied);
}

TEST(HeaderTest, ParseRejectsHugeBlockCount) {
  HiddenFile file;
  Bytes payload(PayloadSize(4096));
  SerializeHeader(file, 4096, payload.data());
  // Corrupt the block count beyond the representable maximum.
  StoreBigEndian64(payload.data() + 16, MaxFileBlocks(4096) + 1);
  HiddenFile out;
  EXPECT_EQ(ParseHeader(payload.data(), 4096, &out).code(),
            StatusCode::kCorruption);
}

// ---- StegFsCore ---------------------------------------------------------------

class StegFsCoreTest : public ::testing::Test {
 protected:
  StegFsCoreTest() : dev_(512, 4096), core_(&dev_, StegFsOptions{1, true}) {
    EXPECT_TRUE(core_.Format().ok());
  }
  storage::MemBlockDevice dev_;
  StegFsCore core_;
};

TEST_F(StegFsCoreTest, FormatRandomizesEveryBlock) {
  // No block may remain all-zero after formatting.
  Bytes block(4096);
  for (uint64_t b = 0; b < dev_.num_blocks(); ++b) {
    ASSERT_TRUE(dev_.ReadBlock(b, block.data()).ok());
    EXPECT_NE(block, Bytes(4096, 0)) << "block " << b << " untouched";
  }
}

TEST_F(StegFsCoreTest, StoreAndLoadEmptyFile) {
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  ASSERT_TRUE(core_.StoreFile(file).ok());

  const auto loaded = core_.LoadFile(file.fak);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->file_size, 0u);
  EXPECT_TRUE(loaded->block_ptrs.empty());
}

TEST_F(StegFsCoreTest, WrongHeaderKeyIsDenied) {
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  ASSERT_TRUE(core_.StoreFile(file).ok());

  FileAccessKey wrong = file.fak;
  wrong.header_key = core_.drbg().Generate(16);
  EXPECT_EQ(core_.LoadFile(wrong).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(StegFsCoreTest, AbsentFileLooksLikeWrongKey) {
  // Opening a random location with a random key gives the same error as a
  // wrong key on a real file — the deniability property.
  const auto fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  EXPECT_EQ(core_.LoadFile(fak).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(StegFsCoreTest, DataBlockRoundTrip) {
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  const Bytes payload = core_.drbg().Generate(core_.payload_size());
  ASSERT_TRUE(core_.WriteDataBlockAt(file, 42, payload.data()).ok());
  file.block_ptrs.push_back(42);
  file.file_size = core_.payload_size();

  Bytes back(core_.payload_size());
  ASSERT_TRUE(core_.ReadFileBlock(file, 0, back.data()).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(StegFsCoreTest, WrongContentKeyYieldsGarbageNotError) {
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  const Bytes payload = core_.drbg().Generate(core_.payload_size());
  ASSERT_TRUE(core_.WriteDataBlockAt(file, 10, payload.data()).ok());
  file.block_ptrs.push_back(10);

  HiddenFile decoy = file;
  decoy.fak.content_key = core_.drbg().Generate(16);
  Bytes out(core_.payload_size());
  // Reading succeeds — the content just decrypts to randomness, exactly
  // what a dummy file would contain.
  ASSERT_TRUE(core_.ReadFileBlock(decoy, 0, out.data()).ok());
  EXPECT_NE(out, payload);
}

TEST_F(StegFsCoreTest, LoadFileWithIndirectTree) {
  const uint64_t blocks = kNumDirectPtrs + 20;
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  // Synthesise pointers; content is irrelevant for the tree round-trip.
  for (uint64_t i = 0; i < blocks; ++i) file.block_ptrs.push_back(i % 500);
  file.indirect_locs.push_back(501);
  file.file_size = blocks * core_.payload_size();
  ASSERT_TRUE(core_.StoreFile(file).ok());

  const auto loaded = core_.LoadFile(file.fak);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->block_ptrs, file.block_ptrs);
  EXPECT_EQ(loaded->indirect_locs, file.indirect_locs);
}

TEST_F(StegFsCoreTest, StoreFileValidatesIndirectSizing) {
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  for (uint64_t i = 0; i < kNumDirectPtrs + 1; ++i) {
    file.block_ptrs.push_back(i);
  }
  // Missing indirect_locs entry for the overflow pointer.
  EXPECT_EQ(core_.StoreFile(file).code(), StatusCode::kFailedPrecondition);
}

TEST_F(StegFsCoreTest, StoreFileRejectsOversizedFile) {
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  file.block_ptrs.assign(MaxFileBlocks(4096) + 1, 0);
  file.indirect_locs.assign(
      HiddenFile::IndirectNeeded(file.num_data_blocks(), 4096), 0);
  EXPECT_EQ(core_.StoreFile(file).code(), StatusCode::kInvalidArgument);
}

TEST_F(StegFsCoreTest, CipherCacheReturnsSameInstance) {
  const Bytes key = core_.drbg().Generate(16);
  const auto a = core_.CipherFor(key);
  const auto b = core_.CipherFor(key);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(StegFsCoreTest, DummyFileReadsRawRandomness) {
  HiddenFile dummy;
  dummy.is_dummy = true;
  dummy.fak = FileAccessKey::Random(core_.drbg(), dev_.num_blocks());
  dummy.block_ptrs.push_back(77);
  dummy.file_size = core_.payload_size();
  Bytes out(core_.payload_size());
  ASSERT_TRUE(core_.ReadFileBlock(dummy, 0, out.data()).ok());
  // Formatted content: random, certainly not all zeros.
  EXPECT_NE(out, Bytes(core_.payload_size(), 0));
}

}  // namespace
}  // namespace steghide::stegfs
