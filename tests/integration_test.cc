#include <gtest/gtest.h>

#include "agent/volatile_agent.h"
#include "analysis/distinguisher.h"
#include "analysis/snapshot_diff.h"
#include "baseline/stegfs2003.h"
#include "oblivious/steg_partition_reader.h"
#include "storage/mem_block_device.h"
#include "storage/snapshot.h"
#include "storage/trace_device.h"
#include "testing/device_factory.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide {
namespace {

using agent::VolatileAgent;
using analysis::DistinguisherOptions;
using analysis::UpdateAnalysisObserver;

// =====================================================================
// Definition 1, update analysis: an attacker snapshotting the raw storage
// must not be able to tell a mixed (real + dummy) update campaign from a
// dummy-only campaign. This is E10 of DESIGN.md, run at test scale.
// =====================================================================

class UpdateAnalysisEndToEnd : public ::testing::Test {
 protected:
  static constexpr uint64_t kBlocks = 1024;
  static constexpr int kRounds = 60;
  static constexpr int kOpsPerRound = 5;

  // Runs a campaign on a fresh volume; `real_ops_per_round` of the 5 ops
  // per round are updates of ONE hot logical block (a worst-case,
  // table-scan-like pattern); the rest are dummy updates. Returns the
  // attacker's per-block update counts.
  std::vector<uint64_t> RunStegHideCampaign(uint64_t seed,
                                            int real_ops_per_round) {
    storage::MemBlockDevice dev(kBlocks, 4096);
    stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{seed, true});
    EXPECT_TRUE(core.Format().ok());
    VolatileAgent agent(&core);
    EXPECT_TRUE(agent.CreateDummyFile("alice", 300).ok());
    auto id = agent.CreateHiddenFile("alice");
    EXPECT_TRUE(id.ok());
    const size_t payload = core.payload_size();
    EXPECT_TRUE(agent.Write(*id, 0, Bytes(payload * 100, 1)).ok());

    UpdateAnalysisObserver observer(kBlocks);
    auto prev = storage::Snapshot::Capture(dev);
    EXPECT_TRUE(prev.ok());
    const Bytes fresh(payload, 0x99);
    for (int round = 0; round < kRounds; ++round) {
      for (int op = 0; op < kOpsPerRound; ++op) {
        if (op < real_ops_per_round) {
          // Hot logical block 3, over and over.
          EXPECT_TRUE(agent.Write(*id, 3 * payload, fresh).ok());
        } else {
          EXPECT_TRUE(agent.IdleDummyUpdates(1).ok());
        }
      }
      auto next = storage::Snapshot::Capture(dev);
      EXPECT_TRUE(next.ok());
      EXPECT_TRUE(observer.ObserveDiff(*prev, *next).ok());
      prev = std::move(next);
    }
    return observer.counts();
  }

  DistinguisherOptions Opts() {
    DistinguisherOptions opts;
    opts.alpha = 0.01;
    opts.num_bins = 16;
    return opts;
  }
};

TEST_F(UpdateAnalysisEndToEnd, StegHideHidesHotBlockUpdates) {
  const auto reference = RunStegHideCampaign(101, /*real_ops_per_round=*/0);
  const auto suspect = RunStegHideCampaign(202, /*real_ops_per_round=*/2);
  const auto verdict =
      analysis::DistinguishUpdateCounts(suspect, reference, Opts());
  EXPECT_FALSE(verdict.distinguished) << verdict.ToString();
}

TEST_F(UpdateAnalysisEndToEnd, StegFs2003IsBrokenByTheSameAttack) {
  // Same hot-block workload on the 2003 baseline, which updates in place
  // and issues no dummy traffic.
  storage::MemBlockDevice dev(kBlocks, 4096);
  stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{303, true});
  ASSERT_TRUE(core.Format().ok());
  baseline::StegFs2003 fs(&core);
  auto id = fs.CreateFile();
  ASSERT_TRUE(id.ok());
  const size_t payload = core.payload_size();
  ASSERT_TRUE(fs.Write(*id, 0, Bytes(payload * 100, 1)).ok());

  UpdateAnalysisObserver observer(kBlocks);
  auto prev = storage::Snapshot::Capture(dev);
  ASSERT_TRUE(prev.ok());
  const Bytes fresh(payload, 0x99);
  for (int round = 0; round < kRounds; ++round) {
    for (int op = 0; op < 2; ++op) {
      ASSERT_TRUE(fs.UpdateBlock(*id, 3, fresh.data()).ok());
    }
    auto next = storage::Snapshot::Capture(dev);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(observer.ObserveDiff(*prev, *next).ok());
    prev = std::move(next);
  }

  // Reference: what the attacker knows dummy-only traffic looks like.
  const auto reference = RunStegHideCampaign(404, /*real_ops_per_round=*/0);
  const auto verdict = analysis::DistinguishUpdateCounts(observer.counts(),
                                                         reference, Opts());
  EXPECT_TRUE(verdict.distinguished) << verdict.ToString();
}

// =====================================================================
// Definition 1, traffic analysis: the request stream between agent and
// raw storage (reads included) must not reveal a skewed read workload
// when it is served through the oblivious storage. E11 at test scale.
// =====================================================================

class TrafficAnalysisEndToEnd : public ::testing::Test {
 protected:
  // Runs a read campaign against an oblivious store and returns the trace
  // observed on the wire. With `hot` true, 70 % of the reads hit one
  // record; otherwise all reads are dummy reads.
  storage::IoTrace RunObliviousCampaign(uint64_t seed, bool hot) {
    testing::TracedMemDevice dev(256, 4096);
    storage::TraceBlockDevice& traced = dev.traced();

    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = 4;
    opts.capacity_blocks = 64;
    opts.partition_base = 0;
    opts.scratch_base = 130;
    opts.drbg_seed = seed;
    auto store = oblivious::ObliviousStore::Create(&traced, opts);
    EXPECT_TRUE(store.ok());

    Bytes payload((*store)->payload_size(), 1);
    for (uint64_t id = 0; id < 64; ++id) {
      EXPECT_TRUE((*store)->Insert(id, payload.data()).ok());
    }
    traced.ClearTrace();  // the attacker analyses steady-state traffic

    Rng rng = testing::MakeTestRng(seed);
    Bytes out((*store)->payload_size());
    for (int i = 0; i < 500; ++i) {
      if (hot && rng.Bernoulli(0.7)) {
        EXPECT_TRUE((*store)->Read(7, out.data()).ok());
      } else {
        EXPECT_TRUE((*store)->DummyRead().ok());
      }
    }
    return traced.trace();
  }
};

TEST_F(TrafficAnalysisEndToEnd, ObliviousStoreHidesHotReads) {
  const auto reference = RunObliviousCampaign(11, /*hot=*/false);
  const auto suspect = RunObliviousCampaign(22, /*hot=*/true);
  DistinguisherOptions opts;
  opts.alpha = 0.01;
  opts.num_bins = 32;
  const auto verdict =
      analysis::DistinguishTraces(suspect, reference, 256, opts);
  EXPECT_FALSE(verdict.distinguished) << verdict.ToString();
}

TEST_F(TrafficAnalysisEndToEnd, DirectReadsAreBrokenByTheSameAttack) {
  // The same hot workload read directly from fixed locations (StegFS
  // without the oblivious cache).
  testing::TracedMemDevice dev(256, 4096);
  storage::TraceBlockDevice& traced = dev.traced();
  Bytes buf(4096);
  Rng rng = testing::MakeTestRng();
  storage::IoTrace reference;
  {
    // Dummy-only reference: uniform reads.
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(traced.ReadBlock(rng.Uniform(256), buf.data()).ok());
    }
    reference = traced.trace();
    traced.ClearTrace();
  }
  for (int i = 0; i < 2000; ++i) {
    const uint64_t block = rng.Bernoulli(0.7) ? 42 : rng.Uniform(256);
    EXPECT_TRUE(traced.ReadBlock(block, buf.data()).ok());
  }
  DistinguisherOptions opts;
  opts.alpha = 0.01;
  opts.num_bins = 32;
  const auto verdict =
      analysis::DistinguishTraces(traced.trace(), reference, 256, opts);
  EXPECT_TRUE(verdict.distinguished);
}

// =====================================================================
// Full read/write system: volatile agent for writes, oblivious reader for
// reads, both over the same core, with content integrity throughout.
// =====================================================================

TEST(FullSystemTest, AgentWritesThenObliviousReads) {
  storage::MemBlockDevice steg_mem(2048, 4096);
  storage::MemBlockDevice obli_mem(256, 4096);
  stegfs::StegFsCore core(&steg_mem, stegfs::StegFsOptions{71, true});
  ASSERT_TRUE(core.Format().ok());

  VolatileAgent agent(&core);
  ASSERT_TRUE(agent.CreateDummyFile("carol", 200).ok());
  auto id = agent.CreateHiddenFile("carol");
  ASSERT_TRUE(id.ok());
  const size_t payload = core.payload_size();
  Bytes data(payload * 16);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 31);
  ASSERT_TRUE(agent.Write(*id, 0, data).ok());
  ASSERT_TRUE(agent.Flush(*id).ok());
  const auto fak = agent.GetFak(*id);
  ASSERT_TRUE(fak.ok());

  // Reads go through the oblivious path (§5.1: updates in the StegFS
  // partition, reads diverted to the oblivious storage).
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 4;
  opts.capacity_blocks = 64;
  opts.partition_base = 0;
  opts.scratch_base = 130;
  auto store = oblivious::ObliviousStore::Create(&obli_mem, opts);
  ASSERT_TRUE(store.ok());
  oblivious::StegPartitionReader reader(&core, store->get());

  auto file = core.LoadFile(*fak);
  ASSERT_TRUE(file.ok());
  file->agent_tag = 1;

  Bytes out(payload);
  Rng rng = testing::MakeTestRng();
  for (int i = 0; i < 300; ++i) {
    const uint64_t logical = rng.Uniform(16);
    ASSERT_TRUE(reader.ReadBlock(*file, logical, out.data()).ok());
    EXPECT_EQ(Bytes(out.begin(), out.end()),
              Bytes(data.begin() + logical * payload,
                    data.begin() + (logical + 1) * payload))
        << "logical " << logical;
  }
  EXPECT_LE(reader.stats().real_fetches, 16u);
  EXPECT_GT(reader.stats().cache_hits, 250u);
}

TEST(FullSystemTest, MixedWorkloadIntegrityUnderChurn) {
  // Two users, interleaved writes, dummy traffic, logouts, re-disclosures
  // — a soak test of the bookkeeping invariants.
  storage::MemBlockDevice dev(4096, 4096);
  stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{81, true});
  ASSERT_TRUE(core.Format().ok());
  VolatileAgent agent(&core);
  ASSERT_TRUE(agent.CreateDummyFile("u1", 400).ok());
  ASSERT_TRUE(agent.CreateDummyFile("u2", 400).ok());

  const size_t payload = core.payload_size();
  auto f1 = agent.CreateHiddenFile("u1");
  auto f2 = agent.CreateHiddenFile("u2");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());

  // Mirror of expected contents.
  std::vector<Bytes> mirror1(50, Bytes(payload, 0)),
      mirror2(50, Bytes(payload, 0));
  ASSERT_TRUE(agent.Write(*f1, 0, Bytes(payload * 50, 0)).ok());
  ASSERT_TRUE(agent.Write(*f2, 0, Bytes(payload * 50, 0)).ok());

  Rng rng = testing::MakeTestRng();
  for (int op = 0; op < 400; ++op) {
    const bool first = rng.Bernoulli(0.5);
    const uint64_t block = rng.Uniform(50);
    Bytes fresh(payload);
    rng.Fill(fresh.data(), fresh.size());
    if (first) {
      ASSERT_TRUE(agent.Write(*f1, block * payload, fresh).ok());
      mirror1[block] = fresh;
    } else {
      ASSERT_TRUE(agent.Write(*f2, block * payload, fresh).ok());
      mirror2[block] = fresh;
    }
    if (op % 37 == 0) ASSERT_TRUE(agent.IdleDummyUpdates(3).ok());
  }

  for (uint64_t b = 0; b < 50; ++b) {
    EXPECT_EQ(*agent.Read(*f1, b * payload, payload), mirror1[b]) << b;
    EXPECT_EQ(*agent.Read(*f2, b * payload, payload), mirror2[b]) << b;
  }

  // u2 logs out and comes back; data intact.
  const auto fak2 = agent.GetFak(*f2);
  ASSERT_TRUE(agent.Logout("u2").ok());
  ASSERT_TRUE(agent.Write(*f1, 0, Bytes(payload, 0xee)).ok());
  mirror1[0] = Bytes(payload, 0xee);
  auto back = agent.DiscloseHiddenFile("u2", *fak2);
  ASSERT_TRUE(back.ok());
  for (uint64_t b = 0; b < 50; ++b) {
    EXPECT_EQ(*agent.Read(*back, b * payload, payload), mirror2[b]) << b;
  }
  EXPECT_EQ(*agent.Read(*f1, 0, payload), mirror1[0]);
}

}  // namespace
}  // namespace steghide
