// Fault-matrix suite for the mirrored shard layer: ReplicatedBlockDevice
// write-all/read-one semantics, rotation, failover, quarantine, degraded
// mode and incremental repair; VolumeSet kill/revive/repair plumbing; a
// crash-consistency scenario (one replica of one shard dies mid
// flush-cascade, serving continues, repair re-mirrors it); and the
// oblivious-replication pin — per-replica traces, including failover and
// repair traffic, depend on the request pattern and fault schedule only,
// never on record contents.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agent/oblivious_agent.h"
#include "storage/fault_device.h"
#include "storage/mem_block_device.h"
#include "storage/replicated_device.h"
#include "storage/trace_device.h"
#include "storage/volume_set.h"
#include "testing/golden.h"

namespace steghide::storage {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;

/// R mem replicas, each behind a killable fault layer and a trace layer:
/// Mem -> Fault -> Trace, mirrored by a ReplicatedBlockDevice — the unit
/// twin of one VolumeSet shard.
struct MirrorFixture {
  explicit MirrorFixture(size_t replicas, uint64_t blocks,
                         ReplicationOptions options = {},
                         size_t block_size = 512) {
    std::vector<BlockDevice*> tops;
    for (size_t r = 0; r < replicas; ++r) {
      mems.push_back(std::make_unique<MemBlockDevice>(blocks, block_size));
      faults.push_back(
          std::make_unique<FaultInjectionBlockDevice>(mems.back().get()));
      traces.push_back(
          std::make_unique<TraceBlockDevice>(faults.back().get()));
      tops.push_back(traces.back().get());
    }
    rep = std::make_unique<ReplicatedBlockDevice>(std::move(tops), options);
  }

  size_t ReadCount(size_t r) const {
    size_t n = 0;
    for (const TraceEvent& ev : traces[r]->trace()) {
      if (ev.kind == TraceEvent::Kind::kRead) ++n;
    }
    return n;
  }

  std::vector<std::unique_ptr<MemBlockDevice>> mems;
  std::vector<std::unique_ptr<FaultInjectionBlockDevice>> faults;
  std::vector<std::unique_ptr<TraceBlockDevice>> traces;
  std::unique_ptr<ReplicatedBlockDevice> rep;
};

TEST(ReplicatedDeviceTest, WritesReachEveryReplicaReadsRotate) {
  MirrorFixture fx(2, 8);
  const Bytes image = GoldenBlock(1, 3, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(3, image.data()).ok());
  EXPECT_TRUE(steghide::testing::BlockEquals(*fx.mems[0], 3, image));
  EXPECT_TRUE(steghide::testing::BlockEquals(*fx.mems[1], 3, image));

  Bytes out(512);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.rep->ReadBlock(3, out.data()).ok());
    EXPECT_EQ(out, image);
  }
  // Read-one with rotation: the four reads alternate replicas — a
  // data-independent choice (a counter, not contents).
  EXPECT_EQ(fx.ReadCount(0), 2u);
  EXPECT_EQ(fx.ReadCount(1), 2u);
  const ReplicationStats stats = fx.rep->stats();
  EXPECT_EQ(stats.reads, 4u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.healthy_replicas, 2u);
}

TEST(ReplicatedDeviceTest, ReadFailoverThenQuarantineAfterThreshold) {
  MirrorFixture fx(2, 8);
  ASSERT_TRUE(FillGolden(*fx.rep, 6).ok());
  fx.faults[0]->Kill();

  // Every read still succeeds. Rotation makes every second read start
  // at the dead replica (a failover); after quarantine_after = 3
  // consecutive failures replica 0 is benched and failovers stop.
  Bytes out(512);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.rep->ReadBlock(2, out.data()).ok()) << "read " << i;
    EXPECT_EQ(out, GoldenBlock(6, 2, 512));
  }
  const ReplicationStats stats = fx.rep->stats();
  EXPECT_EQ(stats.failovers, 3u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.healthy_replicas, 1u);
  EXPECT_EQ(fx.rep->replica_state(0), ReplicaState::kQuarantined);

  // Degraded mode: writes keep succeeding on the surviving replica.
  const Bytes image = GoldenBlock(9, 0, 512);
  EXPECT_TRUE(fx.rep->WriteBlock(0, image.data()).ok());
  EXPECT_TRUE(steghide::testing::BlockEquals(*fx.mems[1], 0, image));
}

TEST(ReplicatedDeviceTest, MissedWriteQuarantinesImmediately) {
  MirrorFixture fx(2, 8);
  fx.faults[1]->Kill();
  const Bytes image = GoldenBlock(4, 5, 512);
  // The write succeeds (replica 0 has it) but replica 1 is now stale and
  // must never serve a read again until repaired.
  ASSERT_TRUE(fx.rep->WriteBlock(5, image.data()).ok());
  EXPECT_EQ(fx.rep->replica_state(1), ReplicaState::kQuarantined);
  EXPECT_EQ(fx.rep->stats().quarantines, 1u);

  fx.faults[1]->Revive();
  // Still quarantined after revival: health is a mirror property, not a
  // device property. All reads come from replica 0.
  const size_t before = fx.ReadCount(1);
  Bytes out(512);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.rep->ReadBlock(5, out.data()).ok());
    EXPECT_EQ(out, image);
  }
  EXPECT_EQ(fx.ReadCount(1), before);
}

TEST(ReplicatedDeviceTest, NoHealthyReplicasSurfacesIoError) {
  MirrorFixture fx(2, 8);
  fx.faults[0]->Kill();
  fx.faults[1]->Kill();
  const Bytes image = GoldenBlock(2, 0, 512);
  EXPECT_EQ(fx.rep->WriteBlock(0, image.data()).code(),
            StatusCode::kIoError);
  Bytes out(512);
  EXPECT_EQ(fx.rep->ReadBlock(0, out.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(fx.rep->stats().healthy_replicas, 0u);
}

TEST(ReplicatedDeviceTest, RepairReMirrorsAndPromotes) {
  MirrorFixture fx(2, 16);
  ASSERT_TRUE(FillGolden(*fx.rep, 8).ok());

  // Replica 1 dies, misses a round of updates, comes back.
  fx.faults[1]->Kill();
  for (uint64_t b = 0; b < 16; b += 2) {
    const Bytes image = GoldenBlock(77, b, 512);
    ASSERT_TRUE(fx.rep->WriteBlock(b, image.data()).ok());
  }
  ASSERT_EQ(fx.rep->replica_state(1), ReplicaState::kQuarantined);
  fx.faults[1]->Revive();

  ASSERT_TRUE(fx.rep->StartRepair(1).ok());
  EXPECT_EQ(fx.rep->replica_state(1), ReplicaState::kRepairing);
  EXPECT_TRUE(fx.rep->repair_pending());

  // Writes during repair reach the repairing replica too, so the copied
  // prefix can never go stale behind the sweep.
  const Bytes live = GoldenBlock(123, 1, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(1, live.data()).ok());

  bool more = true;
  while (more) {
    ASSERT_TRUE(fx.rep->RepairStep(4, &more).ok());
  }
  EXPECT_EQ(fx.rep->replica_state(1), ReplicaState::kHealthy);
  EXPECT_FALSE(fx.rep->repair_pending());
  const ReplicationStats stats = fx.rep->stats();
  EXPECT_EQ(stats.repairs_completed, 1u);
  EXPECT_EQ(stats.repair_blocks, 16u);

  // Byte-for-byte mirror again.
  for (uint64_t b = 0; b < 16; ++b) {
    Bytes a(512), c(512);
    ASSERT_TRUE(fx.mems[0]->ReadBlock(b, a.data()).ok());
    ASSERT_TRUE(fx.mems[1]->ReadBlock(b, c.data()).ok());
    EXPECT_EQ(a, c) << "block " << b;
  }
}

TEST(ReplicatedDeviceTest, RepairTrafficIsAFixedPublicSchedule) {
  MirrorFixture fx(2, 8);
  ASSERT_TRUE(FillGolden(*fx.rep, 31).ok());
  fx.rep->Quarantine(1);
  ASSERT_TRUE(fx.rep->StartRepair(1).ok());
  fx.traces[1]->ClearTrace();

  bool more = true;
  while (more) {
    ASSERT_TRUE(fx.rep->RepairStep(3, &more).ok());
  }
  // The repaired replica sees exactly one ascending full-device write
  // sweep — block ids 0..N-1 in order, independent of which blocks
  // actually changed while it was out.
  const IoTrace& trace = fx.traces[1]->trace();
  ASSERT_EQ(trace.size(), 8u);
  for (uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(trace[b].kind, TraceEvent::Kind::kWrite);
    EXPECT_EQ(trace[b].block_id, b);
  }
}

// ---- Quorum mode (R = 3): W/R windows, concurrent quarantines, ----------
// ---- repair racing live writes ------------------------------------------

ReplicationOptions QuorumOptions(size_t w, size_t r, int quarantine_after) {
  ReplicationOptions options;
  options.quorum = true;
  options.write_quorum = w;
  options.read_quorum = r;
  options.quarantine_after = quarantine_after;
  return options;
}

TEST(QuorumReplicationTest, TwoConcurrentQuarantinesServeAndRepair) {
  // W = 1 survives the loss of two of three replicas: writes keep
  // succeeding on the lone survivor, both casualties walk the
  // lagging -> quarantined ladder independently, and one repair sweep
  // re-mirrors them together.
  MirrorFixture fx(3, 16, QuorumOptions(1, 1, /*quarantine_after=*/2));
  ASSERT_TRUE(FillGolden(*fx.rep, 21).ok());
  fx.faults[1]->Kill();
  fx.faults[2]->Kill();

  for (uint64_t b = 0; b < 8; ++b) {
    const Bytes image = GoldenBlock(22, b, 512);
    ASSERT_TRUE(fx.rep->WriteBlock(b, image.data()).ok()) << "block " << b;
  }
  EXPECT_EQ(fx.rep->replica_state(1), ReplicaState::kQuarantined);
  EXPECT_EQ(fx.rep->replica_state(2), ReplicaState::kQuarantined);
  ReplicationStats stats = fx.rep->stats();
  EXPECT_EQ(stats.quarantines, 2u);
  EXPECT_EQ(stats.write_quorum_failures, 0u);
  EXPECT_EQ(stats.healthy_replicas, 1u);

  Bytes out(512);
  for (uint64_t b = 0; b < 16; ++b) {
    ASSERT_TRUE(fx.rep->ReadBlock(b, out.data()).ok());
    EXPECT_EQ(out, GoldenBlock(b < 8 ? 22 : 21, b, 512)) << "block " << b;
  }
  EXPECT_EQ(fx.rep->stats().quorum_stale_reads, 0u);

  // Both replicas repair in the same sweep and come back byte-identical.
  fx.faults[1]->Revive();
  fx.faults[2]->Revive();
  ASSERT_TRUE(fx.rep->StartRepair(1).ok());
  ASSERT_TRUE(fx.rep->StartRepair(2).ok());
  bool more = true;
  while (more) {
    ASSERT_TRUE(fx.rep->RepairStep(4, &more).ok());
  }
  EXPECT_EQ(fx.rep->replica_state(1), ReplicaState::kHealthy);
  EXPECT_EQ(fx.rep->replica_state(2), ReplicaState::kHealthy);
  for (uint64_t b = 0; b < 16; ++b) {
    Bytes a(512), c(512), d(512);
    ASSERT_TRUE(fx.mems[0]->ReadBlock(b, a.data()).ok());
    ASSERT_TRUE(fx.mems[1]->ReadBlock(b, c.data()).ok());
    ASSERT_TRUE(fx.mems[2]->ReadBlock(b, d.data()).ok());
    EXPECT_EQ(a, c) << "block " << b;
    EXPECT_EQ(a, d) << "block " << b;
  }
}

TEST(QuorumReplicationTest, RepairSweepRestartsWhenRacedByAFailedWrite) {
  MirrorFixture fx(3, 8, QuorumOptions(1, 1, /*quarantine_after=*/3));
  ASSERT_TRUE(FillGolden(*fx.rep, 30).ok());

  // Replica 2 misses one write, comes back, and starts repairing.
  fx.faults[2]->Kill();
  const Bytes missed = GoldenBlock(31, 3, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(3, missed.data()).ok());
  ASSERT_EQ(fx.rep->replica_state(2), ReplicaState::kLagging);
  fx.faults[2]->Revive();
  ASSERT_TRUE(fx.rep->StartRepair(2).ok());

  // The sweep copies blocks 0..3, then a live write to block 1 — already
  // behind the cursor — fails on the repairing replica. The completed
  // sweep may not promote: it restarts until every stamp is current.
  bool more = true;
  ASSERT_TRUE(fx.rep->RepairStep(4, &more).ok());
  ASSERT_TRUE(more);
  ASSERT_EQ(fx.rep->repair_cursor(), 4u);
  fx.faults[2]->Kill();
  const Bytes behind = GoldenBlock(32, 1, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(1, behind.data()).ok());
  fx.faults[2]->Revive();
  // A racing write *ahead* of the cursor lands directly and needs no
  // second pass.
  const Bytes ahead = GoldenBlock(32, 6, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(6, ahead.data()).ok());

  ASSERT_TRUE(fx.rep->RepairStep(4, &more).ok());
  EXPECT_TRUE(more) << "sweep must restart: block 1 is stale again";
  EXPECT_EQ(fx.rep->replica_state(2), ReplicaState::kRepairing);
  while (more) {
    ASSERT_TRUE(fx.rep->RepairStep(4, &more).ok());
  }
  EXPECT_EQ(fx.rep->replica_state(2), ReplicaState::kHealthy);
  EXPECT_EQ(fx.rep->stale_blocks(2), 0u);

  Bytes out(512);
  ASSERT_TRUE(fx.rep->ReadBlock(1, out.data()).ok());
  EXPECT_EQ(out, behind);
  for (uint64_t b = 0; b < 8; ++b) {
    Bytes a(512), c(512);
    ASSERT_TRUE(fx.mems[0]->ReadBlock(b, a.data()).ok());
    ASSERT_TRUE(fx.mems[2]->ReadBlock(b, c.data()).ok());
    EXPECT_EQ(a, c) << "block " << b;
  }
  EXPECT_EQ(fx.rep->stats().quorum_stale_reads, 0u);
}

TEST(QuorumReplicationTest, ReadWindowAtTheIntersectionBoundary) {
  // W + R = R_total + 1 (2 + 2 = 3 + 1): any read window of two rotation
  // candidates intersects every write quorum, so with one lagging
  // replica no read ever widens beyond the window — and none is stale.
  MirrorFixture fx(3, 8, QuorumOptions(2, 2, /*quarantine_after=*/100));
  ASSERT_TRUE(FillGolden(*fx.rep, 33).ok());
  fx.faults[2]->Kill();
  const Bytes fresh = GoldenBlock(34, 4, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(4, fresh.data()).ok());  // two acks = W
  ASSERT_EQ(fx.rep->replica_state(2), ReplicaState::kLagging);

  Bytes out(512);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fx.rep->ReadBlock(4, out.data()).ok());
    EXPECT_EQ(out, fresh) << "read " << i;
  }
  ReplicationStats stats = fx.rep->stats();
  EXPECT_EQ(stats.quorum_widened, 0u);
  EXPECT_EQ(stats.quorum_stale_reads, 0u);
}

TEST(QuorumReplicationTest, BelowTheBoundaryReadsWidenButNeverGoStale) {
  // W + R = R_total (1 + 2 = 3): two laggards can hold stale copies, so
  // a window of two rotation candidates sometimes contains no current
  // replica. The search widens (and says so) rather than serve a stale
  // stamp.
  MirrorFixture fx(3, 8, QuorumOptions(1, 2, /*quarantine_after=*/100));
  ASSERT_TRUE(FillGolden(*fx.rep, 35).ok());
  fx.faults[1]->Kill();
  fx.faults[2]->Kill();
  const Bytes fresh = GoldenBlock(36, 4, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(4, fresh.data()).ok());  // one ack = W

  Bytes out(512);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fx.rep->ReadBlock(4, out.data()).ok());
    EXPECT_EQ(out, fresh) << "read " << i;
  }
  ReplicationStats stats = fx.rep->stats();
  EXPECT_GT(stats.quorum_widened, 0u);
  EXPECT_EQ(stats.quorum_stale_reads, 0u);
}

TEST(QuorumReplicationTest, StaleFallbackOnlyWhenNoCurrentReplicaRemains) {
  MirrorFixture fx(3, 8, QuorumOptions(1, 2, /*quarantine_after=*/2));
  ASSERT_TRUE(FillGolden(*fx.rep, 37).ok());

  // Replicas 1 and 2 miss the update to block 4, then come back
  // reachable (but still stale). The only current copy — replica 0 —
  // dies.
  fx.faults[1]->Kill();
  fx.faults[2]->Kill();
  const Bytes fresh = GoldenBlock(38, 4, 512);
  ASSERT_TRUE(fx.rep->WriteBlock(4, fresh.data()).ok());
  fx.faults[1]->Revive();
  fx.faults[2]->Revive();
  fx.faults[0]->Kill();

  // While replica 0 is still in rotation the read refuses to serve a
  // stale stamp: it fails instead (and the repeated errors bench the
  // dead replica).
  Bytes out(512);
  ASSERT_FALSE(fx.rep->ReadBlock(4, out.data()).ok());
  EXPECT_EQ(fx.rep->replica_state(0), ReplicaState::kQuarantined);
  EXPECT_EQ(fx.rep->stats().quorum_stale_reads, 0u);

  // With no current replica left at all, degraded mode serves the
  // newest reachable stamp — and counts the loss.
  ASSERT_TRUE(fx.rep->ReadBlock(4, out.data()).ok());
  EXPECT_EQ(out, GoldenBlock(37, 4, 512));
  EXPECT_EQ(fx.rep->stats().quorum_stale_reads, 1u);
}

// ---- VolumeSet kill / revive / repair -----------------------------------

TEST(VolumeSetReplicationTest, KillReviveRepairRoundTrip) {
  VolumeSet::Options options;
  options.shards = 2;
  options.replicas = 2;
  options.total_blocks = 64;
  options.block_size = 512;
  options.fault_plan = [](size_t, size_t) { return FaultPlan{}; };
  VolumeSet volumes(options);
  ASSERT_EQ(volumes.replica_count(), 2u);
  ASSERT_NE(volumes.replicated(0), nullptr);

  ASSERT_TRUE(FillGolden(volumes.device(), 51).ok());
  volumes.KillReplica(0, 1);

  // Serving continues degraded: every global block, including shard 0's,
  // still reads and writes.
  Bytes out(512);
  for (uint64_t g = 0; g < 64; ++g) {
    ASSERT_TRUE(volumes.device().ReadBlock(g, out.data()).ok());
    EXPECT_EQ(out, GoldenBlock(51, g, 512));
  }
  for (uint64_t g = 0; g < 64; g += 4) {
    const Bytes image = GoldenBlock(52, g, 512);
    ASSERT_TRUE(volumes.device().WriteBlock(g, image.data()).ok());
  }
  EXPECT_EQ(volumes.replicated(0)->replica_state(1),
            ReplicaState::kQuarantined);

  ASSERT_TRUE(volumes.ReviveAndRepair(0, 1).ok());
  EXPECT_TRUE(volumes.repair_pending());
  for (;;) {
    auto pending = volumes.PumpRepair(8);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    if (!*pending) break;
  }
  EXPECT_FALSE(volumes.repair_pending());
  EXPECT_EQ(volumes.replicated(0)->replica_state(1), ReplicaState::kHealthy);

  // Shard 0's replicas are byte-identical again.
  for (uint64_t local = 0; local < volumes.mem(0, 0).num_blocks(); ++local) {
    Bytes a(512), b(512);
    ASSERT_TRUE(volumes.mem(0, 0).ReadBlock(local, a.data()).ok());
    ASSERT_TRUE(volumes.mem(0, 1).ReadBlock(local, b.data()).ok());
    EXPECT_EQ(a, b) << "local block " << local;
  }
}

TEST(VolumeSetReplicationTest, ReviveAndRepairRequiresReplication) {
  VolumeSet::Options options;
  options.shards = 2;
  options.total_blocks = 16;
  options.block_size = 512;
  VolumeSet volumes(options);
  EXPECT_EQ(volumes.ReviveAndRepair(0, 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(volumes.repair_pending());
  auto pending = volumes.PumpRepair(8);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(*pending);
}

}  // namespace
}  // namespace steghide::storage

// ---- Full-stack crash consistency and per-replica obliviousness ---------

namespace steghide::agent {
namespace {

using storage::FaultPlan;
using storage::IoTrace;
using storage::ReplicaState;
using storage::VolumeSet;

oblivious::ObliviousStoreOptions ReplicatedStoreOptions() {
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 128;  // levels 16, 32, 64, 128
  opts.partition_base = 0;
  opts.scratch_base = 2 * 128 - 2 * 8;  // 240
  opts.drbg_seed = 41;
  opts.deamortize_reorders = true;
  opts.shadow_base = 240 + 128;
  opts.reorder_step_blocks = 1;
  return opts;
}

/// Agent over a K=2, R=2 replicated + traced VolumeSet cache. Two
/// instances with the same seed issue identical op streams until their
/// inputs diverge; `salt` varies record *contents* only.
struct ReplicatedSystem {
  explicit ReplicatedSystem(uint64_t seed)
      : steg_mem(4096, 4096), core(&steg_mem, stegfs::StegFsOptions{seed, true}) {
    VolumeSet::Options options;
    options.shards = 2;
    options.replicas = 2;
    options.total_blocks = 768;
    options.block_size = 4096;
    options.traced = true;
    options.fault_plan = [](size_t, size_t) { return FaultPlan{}; };
    volumes = std::make_unique<VolumeSet>(options);
    EXPECT_TRUE(core.Format().ok());
    auto created = ObliviousAgent::Create(&core, &volumes->device(),
                                          ReplicatedStoreOptions());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    agent = std::move(created).value();
    EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  }

  Bytes FileBlock(uint64_t salt, size_t file_index, size_t block) {
    return Bytes(core.payload_size(),
                 static_cast<uint8_t>(salt * 101 + file_index * 37 + block));
  }

  std::vector<ObliviousAgent::FileId> Populate(uint64_t salt, size_t files,
                                               size_t blocks) {
    std::vector<ObliviousAgent::FileId> ids;
    const size_t payload = core.payload_size();
    for (size_t f = 0; f < files; ++f) {
      auto id = agent->CreateHiddenFile("u");
      EXPECT_TRUE(id.ok());
      Bytes data(blocks * payload);
      for (size_t b = 0; b < blocks; ++b) {
        const Bytes block = FileBlock(salt, f, b);
        std::copy(block.begin(), block.end(), data.begin() + b * payload);
      }
      EXPECT_TRUE(agent->Write(*id, 0, data).ok());
      ids.push_back(*id);
    }
    return ids;
  }

  /// Re-stages a small store-layer working set until an incremental
  /// re-order chain is left mid-flight. Agent requests pay serving taxes
  /// op by op, which drains shallow chains before the call returns; raw
  /// MultiInsert bursts stop paying the moment the call ends, so a
  /// cascade reliably outlives the burst that triggered it.
  void BuildReorderBacklog() {
    auto& store = agent->store();
    Bytes payloads(16 * store.payload_size(), 0x5a);
    std::vector<oblivious::RecordId> rids(16);
    for (size_t i = 0; i < rids.size(); ++i) rids[i] = (1u << 20) + i;
    for (int round = 0; round < 32 && !store.reorder_pending(); ++round) {
      ASSERT_TRUE(store.MultiInsert(rids, payloads.data()).ok());
    }
    ASSERT_TRUE(store.reorder_pending()) << "no chain ever went pending";
  }

  void DrainReorders() {
    while (agent->store().reorder_pending()) {
      bool more = false;
      ASSERT_TRUE(agent->store().StepReorder(1 << 20, &more).ok());
    }
  }

  void RepairReplica(size_t k, size_t r) {
    ASSERT_TRUE(volumes->ReviveAndRepair(k, r).ok());
    for (;;) {
      auto pending = volumes->PumpRepair(32);
      ASSERT_TRUE(pending.ok()) << pending.status().ToString();
      if (!*pending) break;
    }
  }

  storage::MemBlockDevice steg_mem;
  std::unique_ptr<VolumeSet> volumes;
  stegfs::StegFsCore core;
  std::unique_ptr<ObliviousAgent> agent;
};

TEST(ReplicatedCrashConsistencyTest, ShardReplicaDiesMidCascade) {
  ReplicatedSystem sys(3001);
  constexpr size_t kFiles = 6, kBlocks = 4;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(/*salt=*/0, kFiles, kBlocks);

  // Update every file's first block, park a flush cascade mid-flight,
  // then kill one replica of shard 0 under it.
  for (size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(sys.agent
                    ->Write(ids[f], 0,
                            Bytes(payload, static_cast<uint8_t>(0xc0 + f)))
                    .ok());
  }
  sys.BuildReorderBacklog();
  ASSERT_TRUE(sys.agent->store().reorder_pending());
  sys.volumes->KillReplica(0, 1);

  // Zero failed requests: every read and write after the kill succeeds
  // via failover / degraded writes, while the cascade finishes.
  for (size_t f = 0; f < kFiles; ++f) {
    auto back = sys.agent->Read(ids[f], 0, kBlocks * payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
  }
  ASSERT_TRUE(sys.agent
                  ->Write(ids[0], payload, Bytes(payload, 0xee))
                  .ok());
  sys.DrainReorders();
  EXPECT_EQ(sys.volumes->replicated(0)->replica_state(1),
            ReplicaState::kQuarantined);

  // Fail back: revive + repair, then verify every record — the ones from
  // before the kill, the mid-cascade updates, and the degraded-mode
  // write — plus the level hierarchy serving them.
  sys.RepairReplica(0, 1);
  EXPECT_EQ(sys.volumes->replicated(0)->stats().repairs_completed, 1u);

  for (size_t f = 0; f < kFiles; ++f) {
    auto back = sys.agent->Read(ids[f], 0, kBlocks * payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    for (size_t b = 0; b < kBlocks; ++b) {
      Bytes expected;
      if (b == 0) {
        expected = Bytes(payload, static_cast<uint8_t>(0xc0 + f));
      } else if (b == 1 && f == 0) {
        expected = Bytes(payload, 0xee);
      } else {
        expected = sys.FileBlock(0, f, b);
      }
      EXPECT_EQ(Bytes(back->begin() + b * payload,
                      back->begin() + (b + 1) * payload),
                expected)
          << "file " << f << " block " << b;
    }
  }

  // The repaired mirror is byte-identical to its twin.
  auto& mem0 = sys.volumes->mem(0, 0);
  auto& mem1 = sys.volumes->mem(0, 1);
  for (uint64_t local = 0; local < mem0.num_blocks(); ++local) {
    Bytes a(4096), b(4096);
    ASSERT_TRUE(mem0.ReadBlock(local, a.data()).ok());
    ASSERT_TRUE(mem1.ReadBlock(local, b.data()).ok());
    ASSERT_EQ(a, b) << "shard 0 local block " << local;
  }
}

TEST(ReplicatedTraceEquivalenceTest, ReplicaTracesAreContentIndependent) {
  // Twin systems, identical op sequence — kill, degraded serving, and
  // repair included — but different record contents. Every replica's
  // observed stream (reads from rotation/failover, write-all fan-out,
  // the repair sweep) must be identical: replica choice, scrub order and
  // repair traffic are functions of the pattern and the fault schedule,
  // never of the data.
  ReplicatedSystem a(4004), b(4004);
  constexpr size_t kFiles = 4, kBlocks = 4;
  const size_t payload = a.core.payload_size();

  const auto ids_a = a.Populate(/*salt=*/1, kFiles, kBlocks);
  const auto ids_b = b.Populate(/*salt=*/2, kFiles, kBlocks);

  a.volumes->KillReplica(1, 0);
  b.volumes->KillReplica(1, 0);

  for (size_t round = 0; round < 2; ++round) {
    for (size_t f = 0; f < kFiles; ++f) {
      ASSERT_TRUE(a.agent->Read(ids_a[f], 0, kBlocks * payload).ok());
      ASSERT_TRUE(b.agent->Read(ids_b[f], 0, kBlocks * payload).ok());
    }
    ASSERT_TRUE(
        a.agent->Write(ids_a[round], 0, Bytes(payload, 0x11)).ok());
    ASSERT_TRUE(
        b.agent->Write(ids_b[round], 0, Bytes(payload, 0x99)).ok());
  }
  a.DrainReorders();
  b.DrainReorders();
  a.RepairReplica(1, 0);
  b.RepairReplica(1, 0);

  for (size_t k = 0; k < 2; ++k) {
    for (size_t r = 0; r < 2; ++r) {
      const IoTrace& ta = a.volumes->trace(k, r)->trace();
      const IoTrace& tb = b.volumes->trace(k, r)->trace();
      EXPECT_EQ(ta, tb) << "replica (" << k << ", " << r << ")";
    }
  }
  // Sanity: the dead replica really was detected (the first op to reach
  // it after the kill may be a write, which quarantines without a
  // read-path failover — both detection paths are content-independent,
  // so the counters must agree across the twins either way).
  EXPECT_EQ(a.volumes->replicated(1)->stats().quarantines, 1u);
  EXPECT_EQ(a.volumes->replicated(1)->stats().failovers,
            b.volumes->replicated(1)->stats().failovers);
  EXPECT_EQ(a.volumes->replicated(1)->stats().repairs_completed, 1u);
}

}  // namespace
}  // namespace steghide::agent
