#include "storage/trace_device.h"

#include <gtest/gtest.h>

#include "storage/mem_block_device.h"
#include "testing/device_factory.h"
#include "testing/golden.h"
#include "testing/rng.h"

namespace steghide::storage {
namespace {

using steghide::testing::GoldenBlock;
using steghide::testing::MakeTestRng;
using steghide::testing::TracedMemDevice;

TEST(TraceDeviceTest, RecordsOperationsInIssueOrder) {
  TracedMemDevice dev(16, 512);
  Bytes block(512, 0x11);
  ASSERT_TRUE(dev.traced().WriteBlock(3, block).ok());
  Bytes out;
  ASSERT_TRUE(dev.traced().ReadBlock(3, out).ok());
  ASSERT_TRUE(dev.traced().WriteBlock(9, block).ok());
  ASSERT_TRUE(dev.traced().ReadBlock(0, out).ok());

  const IoTrace expected = {{TraceEvent::Kind::kWrite, 3},
                            {TraceEvent::Kind::kRead, 3},
                            {TraceEvent::Kind::kWrite, 9},
                            {TraceEvent::Kind::kRead, 0}};
  EXPECT_EQ(dev.trace(), expected);
}

TEST(TraceDeviceTest, InterleavedMixPreservesTotalOrder) {
  TracedMemDevice dev(64, 512);
  Rng rng = MakeTestRng();
  IoTrace expected;
  Bytes buf(512);
  for (int i = 0; i < 200; ++i) {
    const uint64_t block = rng.Uniform(dev.traced().num_blocks());
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(dev.traced().WriteBlock(block, buf).ok());
      expected.push_back({TraceEvent::Kind::kWrite, block});
    } else {
      ASSERT_TRUE(dev.traced().ReadBlock(block, buf).ok());
      expected.push_back({TraceEvent::Kind::kRead, block});
    }
  }
  EXPECT_EQ(dev.trace(), expected);
}

TEST(TraceDeviceTest, FailedOperationsAreNotRecorded) {
  TracedMemDevice dev(4, 512);
  Bytes buf(512);
  EXPECT_FALSE(dev.traced().ReadBlock(99, buf).ok());
  EXPECT_FALSE(dev.traced().WriteBlock(4, buf).ok());
  EXPECT_TRUE(dev.trace().empty());
}

TEST(TraceDeviceTest, DisableSuppressesRecordingButNotIo) {
  TracedMemDevice dev(8, 512);
  const Bytes golden = GoldenBlock(/*seed=*/7, /*block_id=*/2, 512);

  dev.traced().set_enabled(false);
  ASSERT_TRUE(dev.traced().WriteBlock(2, golden).ok());
  EXPECT_TRUE(dev.trace().empty());
  // The write still reached the backing device.
  EXPECT_TRUE(steghide::testing::BlockEquals(dev.mem(), 2, golden));

  dev.traced().set_enabled(true);
  Bytes out;
  ASSERT_TRUE(dev.traced().ReadBlock(2, out).ok());
  const IoTrace expected = {{TraceEvent::Kind::kRead, 2}};
  EXPECT_EQ(dev.trace(), expected);
}

TEST(TraceDeviceTest, ClearTraceDropsHistory) {
  TracedMemDevice dev(8, 512);
  Bytes buf(512);
  ASSERT_TRUE(dev.traced().WriteBlock(1, buf).ok());
  ASSERT_TRUE(dev.traced().ReadBlock(1, buf).ok());
  ASSERT_EQ(dev.trace().size(), 2u);
  dev.traced().ClearTrace();
  EXPECT_TRUE(dev.trace().empty());
  ASSERT_TRUE(dev.traced().ReadBlock(0, buf).ok());
  EXPECT_EQ(dev.trace().size(), 1u);
}

TEST(TraceDeviceTest, DelegatesGeometryAndFlush) {
  MemBlockDevice mem(32, 1024);
  TraceBlockDevice traced(&mem);
  EXPECT_EQ(traced.num_blocks(), 32u);
  EXPECT_EQ(traced.block_size(), 1024u);
  EXPECT_TRUE(traced.Flush().ok());
}

}  // namespace
}  // namespace steghide::storage
