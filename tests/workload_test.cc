#include <gtest/gtest.h>

#include "baseline/plain_fs.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "testing/rng.h"
#include "workload/adapters.h"
#include "workload/concurrency.h"
#include "workload/file_population.h"
#include "workload/update_stream.h"
#include "workload/zipf.h"

namespace steghide::workload {
namespace {

// ---- Zipf ---------------------------------------------------------------

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng = testing::MakeTestRng();
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  ZipfGenerator zipf(100, 1.0);
  Rng rng = testing::MakeTestRng();
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(rng)]++;
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(ZipfTest, BoundsRespected) {
  ZipfGenerator zipf(5, 2.0);
  Rng rng = testing::MakeTestRng();
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(rng), 5u);
}

// ---- population / update streams over a PlainFs adapter --------------------

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : dev_(8192, 4096), fs_(&dev_, baseline::PlainFs::CleanDisk()),
        adapter_(&fs_, "CleanDisk"), rng_(testing::TestSeed()) {}

  storage::MemBlockDevice dev_;
  baseline::PlainFs fs_;
  PlainFsAdapter adapter_;
  Rng rng_;
};

TEST_F(WorkloadTest, CreatePopulationSizesInRange) {
  PopulationSpec spec;
  spec.file_count = 5;
  spec.min_bytes = 1 << 20;
  spec.max_bytes = 2 << 20;
  auto pop = CreatePopulation(adapter_, rng_, spec);
  ASSERT_TRUE(pop.ok());
  ASSERT_EQ(pop->ids.size(), 5u);
  for (uint64_t s : pop->sizes) {
    EXPECT_GT(s, spec.min_bytes);
    EXPECT_LE(s, spec.max_bytes);
  }
  EXPECT_EQ(pop->total_bytes(),
            pop->sizes[0] + pop->sizes[1] + pop->sizes[2] + pop->sizes[3] +
                pop->sizes[4]);
}

TEST_F(WorkloadTest, CreatePopulationBytesHitsTarget) {
  auto pop = CreatePopulationBytes(adapter_, rng_, 10 << 20, 4 << 20);
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop->total_bytes(), 10u << 20);
  EXPECT_EQ(pop->ids.size(), 3u);  // 4 + 4 + 2 MB
}

TEST_F(WorkloadTest, UniformUpdateStreamInBounds) {
  PopulationSpec spec;
  spec.file_count = 3;
  spec.min_bytes = 100000;
  spec.max_bytes = 200000;
  auto pop = CreatePopulation(adapter_, rng_, spec);
  ASSERT_TRUE(pop.ok());
  const auto ops =
      MakeUniformUpdateStream(*pop, adapter_.payload_size(), rng_, 500, 3);
  ASSERT_EQ(ops.size(), 500u);
  for (const auto& op : ops) {
    const auto it = std::find(pop->ids.begin(), pop->ids.end(), op.file);
    ASSERT_NE(it, pop->ids.end());
    const size_t idx = static_cast<size_t>(it - pop->ids.begin());
    const uint64_t blocks =
        (pop->sizes[idx] + adapter_.payload_size() - 1) /
        adapter_.payload_size();
    EXPECT_LE(op.first_block + op.range_blocks, blocks);
  }
}

TEST_F(WorkloadTest, ApplyUpdateStreamSucceeds) {
  PopulationSpec spec;
  spec.file_count = 2;
  spec.min_bytes = 50000;
  spec.max_bytes = 80000;
  auto pop = CreatePopulation(adapter_, rng_, spec);
  ASSERT_TRUE(pop.ok());
  const auto ops =
      MakeUniformUpdateStream(*pop, adapter_.payload_size(), rng_, 50, 2);
  EXPECT_TRUE(ApplyUpdateStream(adapter_, ops, rng_).ok());
}

TEST_F(WorkloadTest, ZipfStreamSkewsFiles) {
  PopulationSpec spec;
  spec.file_count = 10;
  spec.min_bytes = 50000;
  spec.max_bytes = 60000;
  auto pop = CreatePopulation(adapter_, rng_, spec);
  ASSERT_TRUE(pop.ok());
  const auto ops = MakeZipfUpdateStream(*pop, adapter_.payload_size(), rng_,
                                        2000, 1, 1.2);
  size_t first_file_hits = 0;
  for (const auto& op : ops) {
    if (op.file == pop->ids[0]) ++first_file_hits;
  }
  EXPECT_GT(first_file_hits, 400u);  // rank 1 dominates under theta=1.2
}

// ---- concurrency driver ------------------------------------------------------

TEST(ConcurrencyTest, InterleavingDestroysSequentialRuns) {
  storage::MemBlockDevice backing(8192, 4096);
  storage::SimBlockDevice sim(&backing, storage::DiskModelParams{});
  baseline::PlainFs fs(&sim, baseline::PlainFs::CleanDisk());
  PlainFsAdapter adapter(&fs, "CleanDisk");

  auto f1 = adapter.CreateFile(200 * 4096);
  auto f2 = adapter.CreateFile(200 * 4096);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());

  // Single stream first.
  {
    std::vector<std::unique_ptr<IoTask>> tasks;
    tasks.push_back(
        std::make_unique<FileReadTask>(&adapter, *f1, 200 * 4096));
    auto t = RunConcurrently(tasks, [&] { return sim.clock_ms(); });
    ASSERT_TRUE(t.ok());
  }
  const uint64_t solo_random = sim.stats().random;

  // Two interleaved streams: round-robin alternation forces a seek on
  // almost every access.
  {
    std::vector<std::unique_ptr<IoTask>> tasks;
    tasks.push_back(
        std::make_unique<FileReadTask>(&adapter, *f1, 200 * 4096));
    tasks.push_back(
        std::make_unique<FileReadTask>(&adapter, *f2, 200 * 4096));
    auto t = RunConcurrently(tasks, [&] { return sim.clock_ms(); });
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(t->size(), 2u);
    EXPECT_GT((*t)[0], 0.0);
  }
  EXPECT_GT(sim.stats().random, solo_random + 300);
}

TEST(ConcurrencyTest, FinishTimesAreMonotoneInWork) {
  storage::MemBlockDevice backing(8192, 4096);
  storage::SimBlockDevice sim(&backing, storage::DiskModelParams{});
  baseline::PlainFs fs(&sim, baseline::PlainFs::FragDisk());
  PlainFsAdapter adapter(&fs, "FragDisk");
  auto small = adapter.CreateFile(10 * 4096);
  auto large = adapter.CreateFile(400 * 4096);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());

  std::vector<std::unique_ptr<IoTask>> tasks;
  tasks.push_back(std::make_unique<FileReadTask>(&adapter, *small, 10 * 4096));
  tasks.push_back(std::make_unique<FileReadTask>(&adapter, *large, 400 * 4096));
  auto t = RunConcurrently(tasks, [&] { return sim.clock_ms(); });
  ASSERT_TRUE(t.ok());
  EXPECT_LT((*t)[0], (*t)[1]);  // the small file finishes first
}

TEST(ConcurrencyTest, UpdateRangeTaskAppliesAllBlocks) {
  storage::MemBlockDevice dev(1024, 4096);
  baseline::PlainFs fs(&dev, baseline::PlainFs::CleanDisk());
  PlainFsAdapter adapter(&fs, "CleanDisk");
  auto f = adapter.CreateFile(10 * 4096);
  ASSERT_TRUE(f.ok());

  UpdateOp op{*f, 2, 5};
  UpdateRangeTask task(&adapter, op, 99);
  int steps = 0;
  for (;;) {
    auto done = task.Step();
    ASSERT_TRUE(done.ok());
    ++steps;
    if (*done) break;
  }
  EXPECT_EQ(steps, 5);
}

}  // namespace
}  // namespace steghide::workload
