#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "oblivious/hash_index.h"
#include "oblivious/merge_sort.h"
#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::oblivious {
namespace {

// ---- HashIndex ---------------------------------------------------------

TEST(HashIndexTest, PutGetErase) {
  HashIndex idx;
  idx.Rebuild(1);
  idx.Put(10, 3);
  idx.Put(11, 4);
  EXPECT_EQ(idx.Get(10), std::optional<uint64_t>(3));
  EXPECT_EQ(idx.Get(11), std::optional<uint64_t>(4));
  EXPECT_EQ(idx.Get(12), std::nullopt);
  idx.Put(10, 9);
  EXPECT_EQ(idx.Get(10), std::optional<uint64_t>(9));
  idx.Erase(10);
  EXPECT_EQ(idx.Get(10), std::nullopt);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(HashIndexTest, RebuildClearsAndRekeys) {
  HashIndex idx;
  idx.Rebuild(1);
  idx.Put(5, 5);
  idx.Rebuild(2);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.nonce(), 2u);
  EXPECT_EQ(idx.Get(5), std::nullopt);
}

// ---- ExternalMergeSorter -------------------------------------------------

class MergeSorterTest : public ::testing::Test {
 protected:
  MergeSorterTest()
      : dev_(256, 4096), codec_(4096), drbg_(uint64_t{31}) {
    EXPECT_TRUE(cipher_.SetKey(drbg_.Generate(16)).ok());
  }

  // Seals `payload` at device block `pos`.
  void PutBlock(uint64_t pos, const Bytes& payload) {
    Bytes block(4096);
    ASSERT_TRUE(codec_.Seal(cipher_, drbg_, payload.data(), block.data()).ok());
    ASSERT_TRUE(dev_.WriteBlock(pos, block.data()).ok());
  }

  Bytes GetBlock(uint64_t pos) {
    Bytes block(4096), payload(codec_.payload_size());
    EXPECT_TRUE(dev_.ReadBlock(pos, block.data()).ok());
    EXPECT_TRUE(codec_.Open(cipher_, block.data(), payload.data()).ok());
    return payload;
  }

  storage::MemBlockDevice dev_;
  stegfs::BlockCodec codec_;
  crypto::HashDrbg drbg_;
  crypto::CbcCipher cipher_;
};

TEST_F(MergeSorterTest, InMemoryFastPath) {
  // 4 items, run size 8: everything sorts in memory.
  ExternalMergeSorter sorter(&dev_, &codec_, &cipher_, &drbg_, 128, 8);
  std::map<uint64_t, Bytes> payloads;
  for (uint64_t i = 0; i < 4; ++i) {
    Bytes p(codec_.payload_size(), static_cast<uint8_t>(i + 1));
    payloads[i] = p;
    ASSERT_TRUE(sorter.AddInMemory(p, /*tag=*/100 - i, /*label=*/i).ok());
  }
  auto order = sorter.Finish(/*dst_base=*/0);
  ASSERT_TRUE(order.ok());
  // Tags were descending, so labels come back reversed.
  EXPECT_EQ(*order, (std::vector<uint64_t>{3, 2, 1, 0}));
  for (uint64_t slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(GetBlock(slot), payloads[(*order)[slot]]);
  }
  EXPECT_EQ(sorter.stats().reads, 0u);  // no scratch traffic
}

TEST_F(MergeSorterTest, MultiRunExternalSort) {
  constexpr uint64_t kItems = 40;
  constexpr uint64_t kRun = 8;
  // Source blocks at positions 0..39; scratch at 64; destination at 128.
  std::map<uint64_t, Bytes> payloads;
  Rng rng = testing::MakeTestRng();
  for (uint64_t i = 0; i < kItems; ++i) {
    Bytes p(codec_.payload_size());
    rng.Fill(p.data(), p.size());
    payloads[i] = p;
    PutBlock(i, p);
  }
  ExternalMergeSorter sorter(&dev_, &codec_, &cipher_, &drbg_, 64, kRun);
  std::vector<uint64_t> tags(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    tags[i] = rng.Next();
    ASSERT_TRUE(sorter.Add(i, tags[i], i).ok());
  }
  auto order = sorter.Finish(128);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  ASSERT_EQ(order->size(), kItems);

  // Labels must come out in ascending tag order...
  for (size_t i = 1; i < order->size(); ++i) {
    EXPECT_LE(tags[(*order)[i - 1]], tags[(*order)[i]]);
  }
  // ...and each destination slot must hold the right payload.
  std::set<uint64_t> seen;
  for (uint64_t slot = 0; slot < kItems; ++slot) {
    const uint64_t label = (*order)[slot];
    seen.insert(label);
    EXPECT_EQ(GetBlock(128 + slot), payloads[label]) << "slot " << slot;
  }
  EXPECT_EQ(seen.size(), kItems);  // a permutation, nothing lost
}

// ---- ObliviousStore -------------------------------------------------------

ObliviousStoreOptions SmallOptions() {
  ObliviousStoreOptions opts;
  opts.buffer_blocks = 4;
  opts.capacity_blocks = 32;  // k = 3 levels: 8, 16, 32
  opts.partition_base = 0;
  opts.scratch_base = 60;  // hierarchy needs 2*32-2*4 = 56 blocks
  opts.drbg_seed = 77;
  return opts;
}

class ObliviousStoreTest : public ::testing::Test {
 protected:
  ObliviousStoreTest() : mem_(128, 4096), sim_(&mem_, storage::DiskModelParams{}) {
    auto store = ObliviousStore::Create(&sim_, SmallOptions());
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
    store_->set_clock_fn([this] { return sim_.clock_ms(); });
  }

  Bytes Payload(uint8_t seed) {
    Bytes p(store_->payload_size());
    for (size_t i = 0; i < p.size(); ++i) {
      p[i] = static_cast<uint8_t>(seed + i);
    }
    return p;
  }

  storage::MemBlockDevice mem_;
  storage::SimBlockDevice sim_;
  std::unique_ptr<ObliviousStore> store_;
};

TEST_F(ObliviousStoreTest, GeometryValidation) {
  storage::MemBlockDevice small(16, 4096);
  ObliviousStoreOptions opts = SmallOptions();
  EXPECT_FALSE(ObliviousStore::Create(&small, opts).ok());  // doesn't fit

  opts = SmallOptions();
  opts.capacity_blocks = 24;  // not B * 2^k
  EXPECT_FALSE(ObliviousStore::Create(&mem_, opts).ok());

  opts = SmallOptions();
  opts.scratch_base = 10;  // overlaps hierarchy
  EXPECT_FALSE(ObliviousStore::Create(&mem_, opts).ok());
}

TEST_F(ObliviousStoreTest, HeightMatchesLog2) {
  EXPECT_EQ(store_->height(), 3);
  EXPECT_EQ(store_->hierarchy_blocks(), 56u);
}

TEST_F(ObliviousStoreTest, InsertReadRoundTrip) {
  ASSERT_TRUE(store_->Insert(1, Payload(10).data()).ok());
  EXPECT_TRUE(store_->Contains(1));
  Bytes out(store_->payload_size());
  ASSERT_TRUE(store_->Read(1, out.data()).ok());
  EXPECT_EQ(out, Payload(10));
}

TEST_F(ObliviousStoreTest, MissingRecordIsNotFoundWithoutIo) {
  Bytes out(store_->payload_size());
  const auto io_before = sim_.stats().total_ops();
  EXPECT_EQ(store_->Read(99, out.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(sim_.stats().total_ops(), io_before);
}

TEST_F(ObliviousStoreTest, SurvivesCascadedDumpsProperty) {
  // Fill to capacity, then read everything back repeatedly: dumps cascade
  // through all levels and every record must stay intact.
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(static_cast<uint8_t>(id)).data()).ok());
  }
  Bytes out(store_->payload_size());
  Rng rng = testing::MakeTestRng();
  for (int round = 0; round < 200; ++round) {
    const uint64_t id = rng.Uniform(32);
    ASSERT_TRUE(store_->Read(id, out.data()).ok()) << "round " << round;
    ASSERT_EQ(out, Payload(static_cast<uint8_t>(id))) << "round " << round;
  }
  EXPECT_GT(store_->stats().reorders, 0u);
}

TEST_F(ObliviousStoreTest, WriteSupersedesOldVersion) {
  ASSERT_TRUE(store_->Insert(5, Payload(1).data()).ok());
  // Push it down into the levels.
  for (uint64_t id = 100; id < 108; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(2).data()).ok());
  }
  ASSERT_TRUE(store_->Write(5, Payload(42).data()).ok());
  Bytes out(store_->payload_size());
  ASSERT_TRUE(store_->Read(5, out.data()).ok());
  EXPECT_EQ(out, Payload(42));
  // And after more churn forces merges, the new version still wins.
  for (uint64_t id = 200; id < 216; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(3).data()).ok());
  }
  ASSERT_TRUE(store_->Read(5, out.data()).ok());
  EXPECT_EQ(out, Payload(42));
}

TEST_F(ObliviousStoreTest, CapacityEnforced) {
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  EXPECT_EQ(store_->Insert(500, Payload(0).data()).code(),
            StatusCode::kNoSpace);
  // Updating an existing record is still fine.
  EXPECT_TRUE(store_->Insert(3, Payload(9).data()).ok());
}

TEST_F(ObliviousStoreTest, EveryMissReadsOneSlotPerNonEmptyLevel) {
  for (uint64_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  // Drain the buffer's worth of ids so reads go to the levels.
  Bytes out(store_->payload_size());
  for (int i = 0; i < 50; ++i) {
    store_->ResetStats();
    // Occupancy must be sampled before the read: the read may trigger a
    // buffer flush that reshapes the hierarchy.
    uint64_t non_empty = 0;
    for (uint64_t occ : store_->LevelOccupancy()) {
      if (occ > 0) ++non_empty;
    }
    const uint64_t id = static_cast<uint64_t>(i) % 16;
    ASSERT_TRUE(store_->Read(id, out.data()).ok());
    const auto& st = store_->stats();
    if (st.buffer_hits == 1) continue;  // buffer hit: no level touches
    // One probe per non-empty level, no more, no less — the observable
    // invariant that makes reads pattern-free. (Occupancy counts live
    // records; a level holding only stale slots still gets probed, so
    // allow the stale-only case by checking >=.)
    EXPECT_GE(st.level_probe_reads, non_empty) << "read " << i;
    EXPECT_LE(st.level_probe_reads,
              static_cast<uint64_t>(store_->height()));
  }
}

TEST_F(ObliviousStoreTest, DummyReadsAreServed) {
  EXPECT_TRUE(store_->DummyRead().ok());  // empty store: no-op
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(1).data()).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store_->DummyRead().ok());
  }
  EXPECT_EQ(store_->stats().dummy_reads, 20u);
  EXPECT_EQ(store_->stats().user_reads, 0u);
}

TEST_F(ObliviousStoreTest, StatsSplitRetrieveAndSortTime) {
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  Bytes out(store_->payload_size());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Read(i % 32, out.data()).ok());
  }
  const auto& st = store_->stats();
  EXPECT_GT(st.retrieve_ms, 0.0);
  EXPECT_GT(st.sort_ms, 0.0);
  // Total accounted virtual time should not exceed the device clock.
  EXPECT_LE(st.retrieve_ms + st.sort_ms, sim_.clock_ms() + 1e-6);
}

TEST_F(ObliviousStoreTest, OverheadFactorIsOrderTenK) {
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  store_->ResetStats();
  Bytes out(store_->payload_size());
  Rng rng = testing::MakeTestRng();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store_->Read(rng.Uniform(32), out.data()).ok());
  }
  const double factor = store_->stats().OverheadFactor();
  // §5.2 predicts ~10k I/Os per request (k = 3 here → ~30); accept a broad
  // band since buffer hits dilute it.
  EXPECT_GT(factor, 3.0 * store_->height());
  EXPECT_LT(factor, 20.0 * store_->height());
}

TEST_F(ObliviousStoreTest, ProbePositionsLookUniformProperty) {
  // Collect decoy/real probe slots indirectly: after many reads, the
  // device-level read positions within each level should cover the level
  // broadly (no hot slot). We approximate via reorder churn + probe count.
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  Bytes out(store_->payload_size());
  Rng rng = testing::MakeTestRng();
  // Zipf-skewed REQUESTS: a heavily skewed workload...
  for (int i = 0; i < 300; ++i) {
    const uint64_t id = rng.Bernoulli(0.8) ? 3 : rng.Uniform(32);
    ASSERT_TRUE(store_->Read(id, out.data()).ok());
  }
  // ...must still produce one probe per non-empty level per miss — the
  // hot record does not create hot disk locations because it re-enters
  // the buffer and levels get re-shuffled.
  EXPECT_GT(store_->stats().level_probe_reads, 0u);
  EXPECT_GT(store_->stats().reorders, 5u);
}

TEST_F(ObliviousStoreTest, MultiReadRoundTrip) {
  for (uint64_t id = 0; id < 24; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(static_cast<uint8_t>(id)).data()).ok());
  }
  const std::vector<RecordId> ids = {20, 3, 11, 3, 17};
  Bytes outs(ids.size() * store_->payload_size());
  ASSERT_TRUE(store_->MultiRead(ids, outs.data()).ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(Bytes(outs.begin() + i * store_->payload_size(),
                    outs.begin() + (i + 1) * store_->payload_size()),
              Payload(static_cast<uint8_t>(ids[i])))
        << "request " << i;
  }
}

TEST_F(ObliviousStoreTest, MultiWriteMixesInsertsAndUpdates) {
  ASSERT_TRUE(store_->Insert(1, Payload(1).data()).ok());
  // Push id 1 into the levels so its update takes the scan path.
  for (uint64_t id = 100; id < 108; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  // Group: update a level-resident record, insert two fresh ones, and
  // end with a duplicate that must win.
  const std::vector<RecordId> ids = {1, 200, 201, 200};
  Bytes payloads(ids.size() * store_->payload_size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const Bytes p = Payload(static_cast<uint8_t>(40 + i));
    std::copy(p.begin(), p.end(),
              payloads.data() + i * store_->payload_size());
  }
  ASSERT_TRUE(store_->MultiWrite(ids, payloads.data()).ok());

  Bytes out(store_->payload_size());
  ASSERT_TRUE(store_->Read(1, out.data()).ok());
  EXPECT_EQ(out, Payload(40));
  ASSERT_TRUE(store_->Read(201, out.data()).ok());
  EXPECT_EQ(out, Payload(42));
  ASSERT_TRUE(store_->Read(200, out.data()).ok());
  EXPECT_EQ(out, Payload(43));  // the later duplicate superseded index 1

  // ...and the updates survive merge churn.
  for (uint64_t id = 300; id < 316; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(9).data()).ok());
  }
  ASSERT_TRUE(store_->Read(1, out.data()).ok());
  EXPECT_EQ(out, Payload(40));
}

TEST_F(ObliviousStoreTest, MultiInsertDefersFlushToGroupEnd) {
  std::vector<RecordId> ids(6);
  Bytes payloads(ids.size() * store_->payload_size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 50 + i;
    const Bytes p = Payload(static_cast<uint8_t>(i));
    std::copy(p.begin(), p.end(), payloads.data() + i * store_->payload_size());
  }
  ASSERT_TRUE(store_->MultiInsert(ids, payloads.data()).ok());
  // 6 records arrive in chunks of B = 4: one deferred flush after the
  // first chunk, the remainder stays staged in the buffer.
  EXPECT_EQ(store_->stats().buffer_flushes, 1u);
  EXPECT_EQ(store_->buffer_fill(), 2u);
  Bytes out(store_->payload_size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(store_->Read(ids[i], out.data()).ok());
    EXPECT_EQ(out, Payload(static_cast<uint8_t>(i)));
  }
}

TEST_F(ObliviousStoreTest, MultiWriteGroupIsAtomicAtCapacity) {
  for (uint64_t id = 0; id < 30; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  // 30 resident + 3 fresh would exceed N = 32: nothing may be applied.
  const std::vector<RecordId> ids = {500, 501, 502};
  Bytes payloads(ids.size() * store_->payload_size(), 1);
  EXPECT_EQ(store_->MultiWrite(ids, payloads.data()).code(),
            StatusCode::kNoSpace);
  EXPECT_EQ(store_->record_count(), 30u);
  EXPECT_FALSE(store_->Contains(500));
}

TEST_F(ObliviousStoreTest, RemoveEvictsRecord) {
  for (uint64_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(static_cast<uint8_t>(id)).data()).ok());
  }
  ASSERT_TRUE(store_->Remove(5).ok());
  EXPECT_FALSE(store_->Contains(5));
  EXPECT_EQ(store_->record_count(), 15u);
  Bytes out(store_->payload_size());
  EXPECT_EQ(store_->Read(5, out.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->Remove(5).code(), StatusCode::kNotFound);

  // Eviction frees capacity and re-insertion works.
  ASSERT_TRUE(store_->Insert(5, Payload(99).data()).ok());
  ASSERT_TRUE(store_->Read(5, out.data()).ok());
  EXPECT_EQ(out, Payload(99));

  // The survivors stay intact through the re-orders that drop the stale
  // slots.
  for (uint64_t id = 200; id < 212; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(7).data()).ok());
  }
  for (uint64_t id = 0; id < 16; ++id) {
    if (id == 5) continue;
    ASSERT_TRUE(store_->Read(id, out.data()).ok());
    EXPECT_EQ(out, Payload(static_cast<uint8_t>(id))) << "id " << id;
  }
}

TEST_F(ObliviousStoreTest, DummySamplingStaysUniformAfterRemovals) {
  for (uint64_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(store_->Insert(id, Payload(0).data()).ok());
  }
  // Swap-and-pop must leave no stale ids in the sampling list: a stale
  // id would make DummyRead fail with NotFound.
  for (uint64_t id = 0; id < 16; id += 2) {
    ASSERT_TRUE(store_->Remove(id).ok());
  }
  EXPECT_EQ(store_->record_count(), 8u);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->DummyRead().ok()) << "dummy read " << i;
  }
  EXPECT_EQ(store_->stats().dummy_reads, 200u);
  EXPECT_EQ(store_->stats().user_reads, 0u);
}

TEST_F(ObliviousStoreTest, BatchSoakMatchesMirrorProperty) {
  // Mixed batched ops with a mirror, across flush and merge churn.
  std::vector<uint8_t> mirror(32, 0);
  std::vector<uint8_t> present(32, 0);
  Rng rng = testing::MakeTestRng();
  Bytes payloads(8 * store_->payload_size());
  Bytes outs(8 * store_->payload_size());
  for (int round = 0; round < 60; ++round) {
    const size_t k = 1 + rng.Uniform(8);
    std::vector<RecordId> ids(k);
    if (rng.Bernoulli(0.5)) {
      for (size_t i = 0; i < k; ++i) {
        ids[i] = rng.Uniform(32);
        const uint8_t v = static_cast<uint8_t>(rng.Next());
        std::fill(payloads.begin() + i * store_->payload_size(),
                  payloads.begin() + (i + 1) * store_->payload_size(), v);
        // Later duplicates win, exactly like sequential writes.
        mirror[ids[i]] = v;
        present[ids[i]] = 1;
      }
      ASSERT_TRUE(store_->MultiWrite(ids, payloads.data()).ok())
          << "round " << round;
    } else {
      if (std::none_of(present.begin(), present.end(),
                       [](uint8_t p) { return p != 0; })) {
        continue;
      }
      for (size_t i = 0; i < k; ++i) {
        // Only read ids that exist.
        uint64_t id = rng.Uniform(32);
        while (!present[id]) id = (id + 1) % 32;
        ids[i] = id;
      }
      ASSERT_TRUE(store_->MultiRead(ids, outs.data()).ok())
          << "round " << round;
      for (size_t i = 0; i < k; ++i) {
        ASSERT_EQ(outs[i * store_->payload_size()], mirror[ids[i]])
            << "round " << round << " request " << i;
      }
    }
  }
}

// Geometry sweep: the store must keep every record intact under heavy
// churn for any (B, N) shape, from a single level to a deep hierarchy.
struct Geometry {
  uint64_t buffer;
  uint64_t capacity;
};

class ObliviousGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(ObliviousGeometryTest, SoakAllGeometriesProperty) {
  const Geometry g = GetParam();
  const uint64_t hierarchy = 2 * g.capacity - 2 * g.buffer;
  storage::MemBlockDevice mem(hierarchy + g.capacity + 4, 4096);

  ObliviousStoreOptions opts;
  opts.buffer_blocks = g.buffer;
  opts.capacity_blocks = g.capacity;
  opts.partition_base = 0;
  opts.scratch_base = hierarchy;
  opts.drbg_seed = g.buffer * 1000 + g.capacity;
  auto store = ObliviousStore::Create(&mem, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Mirror of expected contents, updated through Insert and Write.
  std::vector<uint8_t> mirror(g.capacity, 0);
  Bytes payload((*store)->payload_size());
  Bytes out((*store)->payload_size());
  Rng rng(opts.drbg_seed);
  for (int op = 0; op < 500; ++op) {
    const uint64_t id = rng.Uniform(g.capacity);
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0 || !(*store)->Contains(id)) {
      const uint8_t v = static_cast<uint8_t>(rng.Next());
      std::fill(payload.begin(), payload.end(), v);
      ASSERT_TRUE((*store)->Insert(id, payload.data()).ok());
      mirror[id] = v;
    } else if (action == 1) {
      const uint8_t v = static_cast<uint8_t>(rng.Next());
      std::fill(payload.begin(), payload.end(), v);
      ASSERT_TRUE((*store)->Write(id, payload.data()).ok());
      mirror[id] = v;
    } else {
      ASSERT_TRUE((*store)->Read(id, out.data()).ok());
      ASSERT_EQ(out[0], mirror[id]) << "op " << op << " id " << id;
      ASSERT_EQ(out.back(), mirror[id]);
    }
  }
  // Final sweep: everything ever inserted is still correct.
  for (uint64_t id = 0; id < g.capacity; ++id) {
    if (!(*store)->Contains(id)) continue;
    ASSERT_TRUE((*store)->Read(id, out.data()).ok());
    ASSERT_EQ(out[0], mirror[id]) << "final id " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ObliviousGeometryTest,
                         ::testing::Values(Geometry{1, 2}, Geometry{1, 16},
                                           Geometry{4, 8}, Geometry{4, 64},
                                           Geometry{16, 32},
                                           Geometry{8, 256}));

TEST(ObliviousStoreIndexIoTest, ChargedVariantCostsMore) {
  storage::MemBlockDevice mem(128, 4096);

  auto run = [&](bool charge) {
    ObliviousStoreOptions opts = SmallOptions();
    opts.charge_index_io = charge;
    auto store = ObliviousStore::Create(&mem, opts);
    EXPECT_TRUE(store.ok());
    Bytes p((*store)->payload_size(), 1);
    Bytes out((*store)->payload_size());
    for (uint64_t id = 0; id < 16; ++id) {
      EXPECT_TRUE((*store)->Insert(id, p.data()).ok());
    }
    Rng rng = testing::MakeTestRng();
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE((*store)->Read(rng.Uniform(16), out.data()).ok());
    }
    return (*store)->stats().TotalIo();
  };

  const uint64_t plain = run(false);
  const uint64_t charged = run(true);
  EXPECT_GT(charged, plain);
}

}  // namespace
}  // namespace steghide::oblivious
