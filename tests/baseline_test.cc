#include <gtest/gtest.h>

#include <set>

#include "baseline/plain_fs.h"
#include "baseline/stegfs2003.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"

namespace steghide::baseline {
namespace {

// ---- PlainFs ------------------------------------------------------------

TEST(PlainFsTest, CleanDiskLayoutIsContiguous) {
  storage::MemBlockDevice dev(1024, 4096);
  PlainFs fs(&dev, PlainFs::CleanDisk());
  auto f1 = fs.CreateFile(10 * 4096);
  auto f2 = fs.CreateFile(5 * 4096);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*fs.FileBlocks(*f1), 10u);
  EXPECT_EQ(*fs.FileBlocks(*f2), 5u);

  // Contiguity check via the disk model: a full-file read must be almost
  // entirely sequential.
  storage::MemBlockDevice backing(1024, 4096);
  storage::SimBlockDevice sim(&backing, storage::DiskModelParams{});
  PlainFs timed(&sim, PlainFs::CleanDisk());
  auto f = timed.CreateFile(100 * 4096);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(timed.Read(*f, 0, 100 * 4096).ok());
  EXPECT_GE(sim.stats().sequential, 99u);
}

TEST(PlainFsTest, FragDiskReadsSeekBetweenFragments) {
  storage::MemBlockDevice backing(4096, 4096);
  storage::SimBlockDevice sim(&backing, storage::DiskModelParams{});
  PlainFs fs(&sim, PlainFs::FragDisk());
  auto f = fs.CreateFile(64 * 4096);  // 8 fragments of 8 blocks
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.Read(*f, 0, 64 * 4096).ok());
  // Each 8-block fragment is internally sequential: 7 sequential reads per
  // fragment, one seek between fragments.
  EXPECT_EQ(sim.stats().random, 8u);
  EXPECT_EQ(sim.stats().sequential, 56u);
}

TEST(PlainFsTest, ReadWriteRoundTrip) {
  storage::MemBlockDevice dev(256, 4096);
  PlainFs fs(&dev, PlainFs::FragDisk());
  auto f = fs.CreateFile(3 * 4096);
  ASSERT_TRUE(f.ok());
  Bytes data(5000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(fs.Write(*f, 100, data).ok());
  auto back = fs.Read(*f, 100, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(PlainFsTest, WriteBeyondAllocationRejected) {
  storage::MemBlockDevice dev(256, 4096);
  PlainFs fs(&dev, PlainFs::CleanDisk());
  auto f = fs.CreateFile(4096);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(fs.Write(*f, 4090, Bytes(100, 1)).ok());
}

TEST(PlainFsTest, VolumeFull) {
  storage::MemBlockDevice dev(16, 4096);
  PlainFs fs(&dev, PlainFs::CleanDisk());
  EXPECT_TRUE(fs.CreateFile(16 * 4096).ok());
  EXPECT_EQ(fs.CreateFile(4096).status().code(), StatusCode::kNoSpace);
}

TEST(PlainFsTest, FragmentPlacementIsScattered) {
  storage::MemBlockDevice dev(4096, 4096);
  PlainFs fs(&dev, PlainFs::FragDisk());
  auto f = fs.CreateFile(32 * 4096);
  ASSERT_TRUE(f.ok());
  // Probe indirectly: sequential read of the file must incur several
  // non-adjacent jumps (tested above); here check allocation granularity.
  EXPECT_EQ(*fs.FileBlocks(*f), 32u);
}

TEST(PlainFsTest, UpdateBlockInPlace) {
  storage::MemBlockDevice dev(64, 4096);
  PlainFs fs(&dev, PlainFs::CleanDisk());
  auto f = fs.CreateFile(2 * 4096);
  ASSERT_TRUE(f.ok());
  const Bytes payload(4096, 0x5c);
  ASSERT_TRUE(fs.UpdateBlock(*f, 1, payload.data()).ok());
  auto back = fs.Read(*f, 4096, 4096);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  EXPECT_FALSE(fs.UpdateBlock(*f, 2, payload.data()).ok());
}

// ---- StegFs2003 --------------------------------------------------------------

class StegFs2003Test : public ::testing::Test {
 protected:
  StegFs2003Test()
      : dev_(2048, 4096), core_(&dev_, stegfs::StegFsOptions{51, true}),
        fs_(&core_) {
    EXPECT_TRUE(core_.Format().ok());
  }
  storage::MemBlockDevice dev_;
  stegfs::StegFsCore core_;
  StegFs2003 fs_;
};

TEST_F(StegFs2003Test, WriteReadRoundTrip) {
  auto id = fs_.CreateFile();
  ASSERT_TRUE(id.ok());
  Bytes data(20000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 3);
  ASSERT_TRUE(fs_.Write(*id, 0, data).ok());
  auto back = fs_.Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(StegFs2003Test, ReopenByFak) {
  auto id = fs_.CreateFile();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_.Write(*id, 0, Bytes(10000, 0x2d)).ok());
  ASSERT_TRUE(fs_.Flush(*id).ok());
  const auto fak = fs_.GetFak(*id);
  ASSERT_TRUE(fak.ok());

  StegFs2003 second(&core_);
  auto reopened = second.OpenFile(*fak);
  ASSERT_TRUE(reopened.ok());
  auto back = second.Read(*reopened, 0, 10000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes(10000, 0x2d));
}

TEST_F(StegFs2003Test, UpdatesStayInPlace) {
  auto id = fs_.CreateFile();
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(fs_.Write(*id, 0, Bytes(payload * 4, 1)).ok());
  ASSERT_TRUE(fs_.Flush(*id).ok());
  const auto fak = fs_.GetFak(*id);
  const auto before = core_.LoadFile(*fak);
  ASSERT_TRUE(before.ok());

  // The 2003 system rewrites blocks at fixed positions — the very
  // weakness the 2004 paper attacks.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_.Write(*id, 0, Bytes(payload * 4, 2)).ok());
  }
  ASSERT_TRUE(fs_.Flush(*id).ok());
  const auto after = core_.LoadFile(*fak);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->block_ptrs, after->block_ptrs);
}

TEST_F(StegFs2003Test, BlocksAreScattered) {
  auto id = fs_.CreateFile();
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(fs_.Write(*id, 0, Bytes(payload * 50, 1)).ok());
  ASSERT_TRUE(fs_.Flush(*id).ok());
  const auto loaded = core_.LoadFile(*fs_.GetFak(*id));
  ASSERT_TRUE(loaded.ok());
  // Not contiguous: count adjacent pairs.
  uint64_t adjacent = 0;
  for (size_t i = 1; i < loaded->block_ptrs.size(); ++i) {
    if (loaded->block_ptrs[i] == loaded->block_ptrs[i - 1] + 1) ++adjacent;
  }
  EXPECT_LT(adjacent, 5u);
  // And all distinct.
  std::set<uint64_t> uniq(loaded->block_ptrs.begin(),
                          loaded->block_ptrs.end());
  EXPECT_EQ(uniq.size(), loaded->block_ptrs.size());
}

TEST_F(StegFs2003Test, UpdateBlockBounds) {
  auto id = fs_.CreateFile();
  ASSERT_TRUE(id.ok());
  Bytes payload(core_.payload_size(), 1);
  EXPECT_FALSE(fs_.UpdateBlock(*id, 0, payload.data()).ok());
  ASSERT_TRUE(fs_.Write(*id, 0, payload).ok());
  EXPECT_TRUE(fs_.UpdateBlock(*id, 0, payload.data()).ok());
}

}  // namespace
}  // namespace steghide::baseline
