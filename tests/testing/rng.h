#ifndef STEGHIDE_TESTS_TESTING_RNG_H_
#define STEGHIDE_TESTS_TESTING_RNG_H_

#include <cstdint>

#include "util/random.h"

namespace steghide::testing {

/// Deterministic per-test seed: a stable hash of the running test's
/// "Suite.Name" plus a caller salt. Reproduces bit-for-bit run to run
/// (no time-based seeding anywhere in the suites), yet two tests — or
/// two Rngs in one test with different salts — never share a stream.
///
/// Caveat: because the seed derives from the test's name, renaming a
/// test reseeds its streams. Tests asserting statistical thresholds
/// (e.g. RejectAt(0.01)) can flip on a rename alone — rerun the suite
/// after renaming, or pin an explicit Rng seed in such tests.
uint64_t TestSeed(uint64_t salt = 0);

/// An Rng seeded with TestSeed(salt).
Rng MakeTestRng(uint64_t salt = 0);

}  // namespace steghide::testing

#endif  // STEGHIDE_TESTS_TESTING_RNG_H_
