#ifndef STEGHIDE_TESTS_TESTING_DEVICE_FACTORY_H_
#define STEGHIDE_TESTS_TESTING_DEVICE_FACTORY_H_

#include <cstdint>
#include <memory>

#include "storage/block_device.h"
#include "storage/mem_block_device.h"
#include "storage/trace_device.h"

namespace steghide::testing {

/// In-memory device with the block geometry most suites use. 64 blocks
/// of 4 KB is enough for every unit scenario and keeps allocation cheap.
std::unique_ptr<storage::MemBlockDevice> MakeMemDevice(
    uint64_t num_blocks = 64,
    size_t block_size = storage::kDefaultBlockSize);

/// A mem device wrapped in a TraceBlockDevice, owning both halves, for
/// tests that assert on the observed I/O stream.
class TracedMemDevice {
 public:
  explicit TracedMemDevice(uint64_t num_blocks = 64,
                           size_t block_size = storage::kDefaultBlockSize)
      : mem_(num_blocks, block_size), trace_(&mem_) {}

  storage::MemBlockDevice& mem() { return mem_; }
  storage::TraceBlockDevice& traced() { return trace_; }
  const storage::IoTrace& trace() const { return trace_.trace(); }

 private:
  storage::MemBlockDevice mem_;
  storage::TraceBlockDevice trace_;
};

}  // namespace steghide::testing

#endif  // STEGHIDE_TESTS_TESTING_DEVICE_FACTORY_H_
