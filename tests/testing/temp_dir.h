#ifndef STEGHIDE_TESTS_TESTING_TEMP_DIR_H_
#define STEGHIDE_TESTS_TESTING_TEMP_DIR_H_

#include <gtest/gtest.h>

#include <string>

namespace steghide::testing {

/// A unique directory under the test runner's temp root, recursively
/// deleted on destruction. Keeps FileBlockDevice suites from leaking
/// volume images between runs.
class ScopedTempDir {
 public:
  ScopedTempDir();
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Absolute path for a file named `name` inside the directory.
  std::string FilePath(const std::string& name) const;

 private:
  std::string path_;
};

/// Fixture base for suites that need scratch files: each test gets a
/// fresh directory, removed in TearDown even when the test fails.
class TempDirTest : public ::testing::Test {
 protected:
  const std::string& temp_path() const { return dir_.path(); }
  std::string TempFile(const std::string& name) const {
    return dir_.FilePath(name);
  }

 private:
  ScopedTempDir dir_;
};

}  // namespace steghide::testing

#endif  // STEGHIDE_TESTS_TESTING_TEMP_DIR_H_
