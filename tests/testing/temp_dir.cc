#include "testing/temp_dir.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

namespace steghide::testing {
namespace {

std::atomic<uint64_t> g_dir_counter{0};

}  // namespace

ScopedTempDir::ScopedTempDir() {
  const uint64_t id = g_dir_counter.fetch_add(1);
  std::filesystem::path base(::testing::TempDir());
  // Pid + counter keeps parallel ctest invocations from colliding.
  std::filesystem::path dir =
      base / ("steghide_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(id));
  std::filesystem::create_directories(dir);
  path_ = dir.string();
}

ScopedTempDir::~ScopedTempDir() {
  std::error_code ec;  // best-effort; never throw from a destructor
  std::filesystem::remove_all(path_, ec);
}

std::string ScopedTempDir::FilePath(const std::string& name) const {
  return (std::filesystem::path(path_) / name).string();
}

}  // namespace steghide::testing
