#include "testing/golden.h"

namespace steghide::testing {
namespace {

// splitmix64: cheap, well-mixed, and stateless per (seed, block, word).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Bytes GoldenBlock(uint64_t seed, uint64_t block_id, size_t block_size) {
  Bytes block(block_size);
  uint64_t state = Mix(seed ^ Mix(block_id));
  for (size_t i = 0; i < block_size; ++i) {
    if (i % 8 == 0) state = Mix(state);
    block[i] = static_cast<uint8_t>(state >> ((i % 8) * 8));
  }
  return block;
}

Status FillGolden(storage::BlockDevice& dev, uint64_t seed) {
  for (uint64_t b = 0; b < dev.num_blocks(); ++b) {
    STEGHIDE_RETURN_IF_ERROR(
        dev.WriteBlock(b, GoldenBlock(seed, b, dev.block_size())));
  }
  return Status::OK();
}

::testing::AssertionResult BlockEquals(storage::BlockDevice& dev,
                                       uint64_t block_id,
                                       const Bytes& expected) {
  Bytes actual;
  Status s = dev.ReadBlock(block_id, actual);
  if (!s.ok()) {
    return ::testing::AssertionFailure()
           << "ReadBlock(" << block_id << ") failed: " << s.ToString();
  }
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "block " << block_id << ": size " << actual.size()
           << " != expected " << expected.size();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] != expected[i]) {
      return ::testing::AssertionFailure()
             << "block " << block_id << " differs first at byte " << i << ": 0x"
             << std::hex << int{actual[i]} << " != expected 0x"
             << int{expected[i]};
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult DeviceMatchesGolden(storage::BlockDevice& dev,
                                               uint64_t seed) {
  for (uint64_t b = 0; b < dev.num_blocks(); ++b) {
    auto result = BlockEquals(dev, b, GoldenBlock(seed, b, dev.block_size()));
    if (!result) return result;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace steghide::testing
