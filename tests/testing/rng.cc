#include "testing/rng.h"

#include <gtest/gtest.h>

#include <string>

namespace steghide::testing {
namespace {

uint64_t Fnv1a(const std::string& s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

uint64_t TestSeed(uint64_t salt) {
  uint64_t h = 0xcbf29ce484222325ull ^ (salt * 0x9e3779b97f4a7c15ull);
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    h = Fnv1a(std::string(info->test_suite_name()) + "." + info->name(), h);
  }
  // Rng rejects an all-zero state internally, but keep the seed nonzero
  // so logs never show a suspicious 0.
  return h == 0 ? 0x9e3779b97f4a7c15ull : h;
}

Rng MakeTestRng(uint64_t salt) { return Rng(TestSeed(salt)); }

}  // namespace steghide::testing
