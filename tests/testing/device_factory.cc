#include "testing/device_factory.h"

namespace steghide::testing {

std::unique_ptr<storage::MemBlockDevice> MakeMemDevice(uint64_t num_blocks,
                                                       size_t block_size) {
  return std::make_unique<storage::MemBlockDevice>(num_blocks, block_size);
}

}  // namespace steghide::testing
