#ifndef STEGHIDE_TESTS_TESTING_GOLDEN_H_
#define STEGHIDE_TESTS_TESTING_GOLDEN_H_

#include <gtest/gtest.h>

#include <cstdint>

#include "storage/block_device.h"
#include "util/bytes.h"

namespace steghide::testing {

/// Deterministic block content for (seed, block_id) — the "golden"
/// pattern suites write before round-tripping through a device, codec,
/// or snapshot. Independent of any Rng stream so two call sites always
/// agree.
Bytes GoldenBlock(uint64_t seed, uint64_t block_id, size_t block_size);

/// Writes GoldenBlock(seed, i) to every block of `dev`.
Status FillGolden(storage::BlockDevice& dev, uint64_t seed);

/// EXPECT-friendly comparator: does block `block_id` of `dev` hold
/// exactly `expected`? Failure messages name the first differing byte.
::testing::AssertionResult BlockEquals(storage::BlockDevice& dev,
                                       uint64_t block_id,
                                       const Bytes& expected);

/// Comparator for a full golden volume: every block matches
/// GoldenBlock(seed, i). Stops at the first mismatching block.
::testing::AssertionResult DeviceMatchesGolden(storage::BlockDevice& dev,
                                               uint64_t seed);

}  // namespace steghide::testing

#endif  // STEGHIDE_TESTS_TESTING_GOLDEN_H_
