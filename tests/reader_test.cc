#include <gtest/gtest.h>

#include "oblivious/steg_partition_reader.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::oblivious {
namespace {

// Two devices: one carrying the StegFS partition, one carrying the
// oblivious store (in a deployment they are partitions of one volume; two
// devices keep the geometry simple and the accounting separable).
class ReaderTest : public ::testing::Test {
 protected:
  ReaderTest()
      : steg_mem_(1024, 4096),
        obli_mem_(256, 4096),
        core_(&steg_mem_, stegfs::StegFsOptions{41, true}) {
    EXPECT_TRUE(core_.Format().ok());
    ObliviousStoreOptions opts;
    opts.buffer_blocks = 4;
    opts.capacity_blocks = 64;  // k = 4
    opts.partition_base = 0;
    opts.scratch_base = 130;
    auto store = ObliviousStore::Create(&obli_mem_, opts);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
    reader_ = std::make_unique<StegPartitionReader>(&core_, store_.get());
  }

  // Builds a hidden file with `blocks` data blocks of recognisable
  // content directly through the core.
  stegfs::HiddenFile MakeFile(uint64_t blocks, uint64_t tag) {
    stegfs::HiddenFile file;
    file.fak = stegfs::FileAccessKey::Random(core_.drbg(), core_.num_blocks());
    file.agent_tag = tag;
    for (uint64_t i = 0; i < blocks; ++i) {
      Bytes payload(core_.payload_size(),
                    static_cast<uint8_t>(tag * 16 + i));
      const uint64_t physical = 100 + tag * 100 + i;
      EXPECT_TRUE(core_.WriteDataBlockAt(file, physical, payload.data()).ok());
      file.block_ptrs.push_back(physical);
    }
    file.file_size = blocks * core_.payload_size();
    return file;
  }

  storage::MemBlockDevice steg_mem_;
  storage::MemBlockDevice obli_mem_;
  stegfs::StegFsCore core_;
  std::unique_ptr<ObliviousStore> store_;
  std::unique_ptr<StegPartitionReader> reader_;
};

TEST_F(ReaderTest, RecordIdPacksFileAndBlock) {
  stegfs::HiddenFile f;
  f.agent_tag = 7;
  EXPECT_EQ(StegPartitionReader::MakeRecordId(f, 3), (7ull << 32) | 3);
}

TEST_F(ReaderTest, FirstReadFetchesThenCaches) {
  auto file = MakeFile(4, 1);
  Bytes out(core_.payload_size());
  ASSERT_TRUE(reader_->ReadBlock(file, 2, out.data()).ok());
  EXPECT_EQ(out, Bytes(core_.payload_size(), 16 + 2));
  EXPECT_EQ(reader_->stats().real_fetches, 1u);
  EXPECT_EQ(reader_->stats().cache_hits, 0u);

  // Second read of the same block is served by the oblivious store.
  ASSERT_TRUE(reader_->ReadBlock(file, 2, out.data()).ok());
  EXPECT_EQ(out, Bytes(core_.payload_size(), 16 + 2));
  EXPECT_EQ(reader_->stats().real_fetches, 1u);
  EXPECT_EQ(reader_->stats().cache_hits, 1u);
}

TEST_F(ReaderTest, EachBlockFetchedAtMostOnceProperty) {
  auto file = MakeFile(8, 1);
  Bytes out(core_.payload_size());
  Rng rng = testing::MakeTestRng();
  for (int i = 0; i < 200; ++i) {
    const uint64_t logical = rng.Uniform(8);
    ASSERT_TRUE(reader_->ReadBlock(file, logical, out.data()).ok());
    ASSERT_EQ(out, Bytes(core_.payload_size(),
                         static_cast<uint8_t>(16 + logical)));
  }
  // §5.1.1: "read operations are conducted at most once for each data
  // block".
  EXPECT_LE(reader_->stats().real_fetches, 8u);
  EXPECT_EQ(reader_->fetched_count(), reader_->stats().real_fetches);
}

TEST_F(ReaderTest, MultipleFilesShareTheCache) {
  auto f1 = MakeFile(3, 1);
  auto f2 = MakeFile(3, 2);
  Bytes out(core_.payload_size());
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(reader_->ReadBlock(f1, b, out.data()).ok());
    EXPECT_EQ(out, Bytes(core_.payload_size(), static_cast<uint8_t>(16 + b)));
    ASSERT_TRUE(reader_->ReadBlock(f2, b, out.data()).ok());
    EXPECT_EQ(out, Bytes(core_.payload_size(), static_cast<uint8_t>(32 + b)));
  }
  EXPECT_EQ(reader_->stats().real_fetches, 6u);
}

TEST_F(ReaderTest, DecoyReadsAppearAsFetchedSetGrows) {
  // With many blocks fetched, Figure 8(a) issues decoy re-reads before a
  // real fetch with probability |S|/M. Fetch a large fraction of a small
  // partition and count decoys.
  storage::MemBlockDevice steg_small(64, 4096);
  stegfs::StegFsCore core_small(&steg_small, stegfs::StegFsOptions{43, true});
  ASSERT_TRUE(core_small.Format().ok());
  StegPartitionReader reader(&core_small, store_.get());

  stegfs::HiddenFile file;
  file.fak =
      stegfs::FileAccessKey::Random(core_small.drbg(), core_small.num_blocks());
  file.agent_tag = 5;
  for (uint64_t i = 0; i < 32; ++i) {
    Bytes payload(core_small.payload_size(), static_cast<uint8_t>(i));
    ASSERT_TRUE(core_small.WriteDataBlockAt(file, i, payload.data()).ok());
    file.block_ptrs.push_back(i);
  }
  file.file_size = 32 * core_small.payload_size();

  Bytes out(core_small.payload_size());
  for (uint64_t b = 0; b < 32; ++b) {
    ASSERT_TRUE(reader.ReadBlock(file, b, out.data()).ok());
  }
  // Expected decoys = sum over fetches of S/(M-S) ≈ 11 for S=0..31, M=64.
  EXPECT_GT(reader.stats().decoy_reads, 2u);
  EXPECT_LT(reader.stats().decoy_reads, 60u);
}

TEST_F(ReaderTest, DummyOpsExerciseBothPartitions) {
  auto file = MakeFile(4, 1);
  Bytes out(core_.payload_size());
  ASSERT_TRUE(reader_->ReadBlock(file, 0, out.data()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reader_->IdleDummyOp().ok());
  }
  EXPECT_EQ(reader_->stats().dummy_reads, 10u);
  EXPECT_EQ(store_->stats().dummy_reads, 10u);
}

TEST_F(ReaderTest, BatchReadMixesHitsAndMisses) {
  auto file = MakeFile(8, 1);
  Bytes out(core_.payload_size());
  // Prime blocks 1 and 5.
  ASSERT_TRUE(reader_->ReadBlock(file, 1, out.data()).ok());
  ASSERT_TRUE(reader_->ReadBlock(file, 5, out.data()).ok());
  ASSERT_EQ(reader_->stats().real_fetches, 2u);

  const std::vector<uint64_t> logicals = {0, 1, 3, 5, 7};
  Bytes outs(logicals.size() * core_.payload_size());
  ASSERT_TRUE(reader_->ReadBlockBatch(file, logicals, outs.data()).ok());
  for (size_t i = 0; i < logicals.size(); ++i) {
    EXPECT_EQ(Bytes(outs.begin() + i * core_.payload_size(),
                    outs.begin() + (i + 1) * core_.payload_size()),
              Bytes(core_.payload_size(),
                    static_cast<uint8_t>(16 + logicals[i])))
        << "block " << logicals[i];
  }
  // 1 and 5 were cache hits; 0, 3 and 7 were miss-filled once each.
  EXPECT_EQ(reader_->stats().real_fetches, 5u);
  EXPECT_EQ(reader_->stats().cache_hits, 2u);
}

TEST_F(ReaderTest, BatchReadFetchesDuplicateMissOnce) {
  auto file = MakeFile(4, 1);
  const std::vector<uint64_t> logicals = {2, 2, 2};
  Bytes outs(logicals.size() * core_.payload_size());
  ASSERT_TRUE(reader_->ReadBlockBatch(file, logicals, outs.data()).ok());
  // §5.1.1: at most one fetch per block, even within one batch.
  EXPECT_EQ(reader_->stats().real_fetches, 1u);
  for (size_t i = 0; i < logicals.size(); ++i) {
    EXPECT_EQ(outs[i * core_.payload_size()], 16 + 2);
  }
}

TEST_F(ReaderTest, BatchReadMatchesSequentialContentProperty) {
  auto file = MakeFile(8, 1);
  Rng rng = testing::MakeTestRng();
  Bytes out(core_.payload_size());
  for (int round = 0; round < 40; ++round) {
    const size_t k = 1 + rng.Uniform(6);
    std::vector<uint64_t> logicals(k);
    for (size_t i = 0; i < k; ++i) logicals[i] = rng.Uniform(8);
    Bytes outs(k * core_.payload_size());
    ASSERT_TRUE(reader_->ReadBlockBatch(file, logicals, outs.data()).ok())
        << "round " << round;
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ(outs[i * core_.payload_size()],
                static_cast<uint8_t>(16 + logicals[i]))
          << "round " << round << " block " << logicals[i];
    }
  }
  EXPECT_LE(reader_->stats().real_fetches, 8u);
}

TEST_F(ReaderTest, BatchReadRejectsOutOfRangeUpfront) {
  auto file = MakeFile(4, 1);
  const std::vector<uint64_t> logicals = {0, 9};
  Bytes outs(logicals.size() * core_.payload_size());
  EXPECT_EQ(reader_->ReadBlockBatch(file, logicals, outs.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(reader_->stats().real_fetches, 0u);
}

TEST_F(ReaderTest, OutOfRangeRejected) {
  auto file = MakeFile(2, 1);
  Bytes out(core_.payload_size());
  EXPECT_EQ(reader_->ReadBlock(file, 2, out.data()).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace steghide::oblivious
