// Suite for the multi-threaded request dispatcher: group commit over the
// cross-file batch entry points, trace equivalence of a dispatched group
// against sequential requests (the attacker cannot tell k concurrent
// users from k serial ones), and data integrity under real-thread stress
// with randomized arrival jitter. The stress tests are the ones the
// sanitize/tsan presets are aimed at.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "agent/dispatch/request_dispatcher.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "storage/mem_block_device.h"
#include "storage/trace_device.h"
#include "util/random.h"
#include "workload/concurrency.h"

namespace steghide::agent {
namespace {

using oblivious::ObliviousStoreOptions;
using storage::IoTrace;
using storage::TraceEvent;

ObliviousStoreOptions StoreOptions() {
  ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 128;  // levels 16, 32, 64, 128
  opts.partition_base = 0;
  opts.scratch_base = 2 * 128 - 2 * 8;
  opts.drbg_seed = 41;
  return opts;
}

ObliviousStoreOptions DeamortStoreOptions() {
  // The deamortized twin of StoreOptions(): shadow mirror after scratch,
  // taxes paced at the floor so chains linger into dispatcher idle gaps.
  ObliviousStoreOptions opts = StoreOptions();
  opts.deamortize_reorders = true;
  opts.shadow_base = opts.scratch_base + opts.capacity_blocks;  // 240 + 128
  opts.reorder_step_blocks = 1;
  return opts;
}

/// One fully wired ObliviousAgent system with a traced cache device.
/// Two instances built with the same seed are bit-for-bit identical
/// until their request streams diverge.
struct System {
  explicit System(uint64_t seed,
                  ObliviousStoreOptions store_options = StoreOptions())
      : steg_mem(4096, 4096),
        cache_mem(768, 4096),
        cache_traced(&cache_mem),
        core(&steg_mem, stegfs::StegFsOptions{seed, true}) {
    EXPECT_TRUE(core.Format().ok());
    auto created =
        ObliviousAgent::Create(&core, &cache_traced, store_options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    agent = std::move(created).value();
    EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  }

  /// Creates `count` hidden files of `blocks` payload blocks each, with
  /// per-file deterministic content, and pre-warms the oblivious cache by
  /// reading every file once (so later reads are level scans, not
  /// miss-fills).
  std::vector<ObliviousAgent::FileId> Populate(size_t count, size_t blocks,
                                               bool prewarm = true) {
    std::vector<ObliviousAgent::FileId> ids;
    const size_t payload = core.payload_size();
    for (size_t f = 0; f < count; ++f) {
      auto id = agent->CreateHiddenFile("u");
      EXPECT_TRUE(id.ok());
      Bytes data(blocks * payload);
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(f * 37 + i / payload);
      }
      EXPECT_TRUE(agent->Write(*id, 0, data).ok());
      ids.push_back(*id);
    }
    if (prewarm) {
      for (size_t f = 0; f < count; ++f) {
        EXPECT_TRUE(agent->Read(ids[f], 0, blocks * payload).ok());
      }
    }
    return ids;
  }

  Bytes ExpectedBlock(size_t file_index, size_t block) {
    return Bytes(core.payload_size(),
                 static_cast<uint8_t>(file_index * 37 + block));
  }

  storage::MemBlockDevice steg_mem;
  storage::MemBlockDevice cache_mem;
  storage::TraceBlockDevice cache_traced;
  stegfs::StegFsCore core;
  std::unique_ptr<ObliviousAgent> agent;
};

/// Touches per level of the oblivious hierarchy in a cache-device trace.
std::vector<uint64_t> LevelTouchCounts(const IoTrace& trace) {
  const ObliviousStoreOptions opts = StoreOptions();
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  uint64_t base = opts.partition_base;
  for (uint64_t cap = 2 * opts.buffer_blocks; cap <= opts.capacity_blocks;
       cap *= 2) {
    ranges.emplace_back(base, base + cap);
    base += cap;
  }
  std::vector<uint64_t> counts(ranges.size(), 0);
  for (const TraceEvent& ev : trace) {
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ev.block_id >= ranges[i].first && ev.block_id < ranges[i].second) {
        ++counts[i];
        break;
      }
    }
  }
  return counts;
}

// ---- basic serving -------------------------------------------------------

TEST(RequestDispatcherTest, SingleUserRoundTrip) {
  System sys(101);
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(1, 4);

  RequestDispatcher dispatcher(sys.agent.get());
  auto session = dispatcher.OpenSession();
  auto back = session->Read(ids[0], 0, 4 * payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(Bytes(back->begin() + b * payload,
                    back->begin() + (b + 1) * payload),
              sys.ExpectedBlock(0, b));
  }

  ASSERT_TRUE(session->Write(ids[0], payload, Bytes(payload, 0x5a)).ok());
  auto again = session->Read(ids[0], payload, payload);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, Bytes(payload, 0x5a));

  session.reset();
  dispatcher.Stop();
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.read_requests, 2u);
  EXPECT_EQ(stats.write_requests, 1u);
}

TEST(RequestDispatcherTest, StopDrainsAndRejectsLateSubmissions) {
  System sys(102);
  const auto ids = sys.Populate(1, 2);
  const size_t payload = sys.core.payload_size();

  RequestDispatcher dispatcher(sys.agent.get());
  auto pending = dispatcher.SubmitRead(ids[0], 0, payload);
  dispatcher.Stop();
  auto drained = pending.get();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, sys.ExpectedBlock(0, 0));

  auto late = dispatcher.SubmitRead(ids[0], 0, payload).get();
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

// ---- group commit --------------------------------------------------------

TEST(RequestDispatcherTest, GroupCommitAggregatesConcurrentUsers) {
  System sys(103);
  const size_t kUsers = 6;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(kUsers, 4);

  const auto before = sys.agent->store().stats();

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::milliseconds(500);
  RequestDispatcher dispatcher(sys.agent.get(), options);

  std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
  for (size_t u = 0; u < kUsers; ++u) sessions.push_back(dispatcher.OpenSession());

  std::vector<std::function<Status()>> users;
  for (size_t u = 0; u < kUsers; ++u) {
    users.push_back([&, u]() -> Status {
      for (uint64_t block = 0; block < 4; ++block) {
        STEGHIDE_ASSIGN_OR_RETURN(
            const Bytes data,
            sessions[u]->Read(ids[u], block * payload, payload));
        if (data != sys.ExpectedBlock(u, block)) {
          return Status::Internal("content mismatch");
        }
      }
      return Status::OK();
    });
  }
  for (const Status& status : workload::RunOnThreads(std::move(users))) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  sessions.clear();
  dispatcher.Stop();

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, kUsers * 4);
  // Aggregation happened: fewer groups than requests, and at least one
  // group carried multiple users.
  EXPECT_LT(stats.read_groups, stats.requests);
  EXPECT_GT(stats.max_fill, 1u);
  EXPECT_GT(stats.MeanFill(), 1.0);

  // The store served the 24 level-scan requests in fewer passes than the
  // per-request path (one pass each) would have.
  const auto after = sys.agent->store().stats();
  const uint64_t scans = after.scan_passes - before.scan_passes;
  EXPECT_LT(scans, stats.requests);
}

// ---- trace equivalence ---------------------------------------------------

/// Runs k one-block reads (one per file) through a dispatcher configured
/// to commit them as one group, with per-thread arrival jitter drawn
/// from `jitter_seed`. Returns the cache-device trace of the group.
IoTrace DispatchedGroupTrace(System& sys,
                             const std::vector<ObliviousAgent::FileId>& ids,
                             uint64_t jitter_seed) {
  const size_t payload = sys.core.payload_size();
  sys.cache_traced.ClearTrace();

  DispatcherOptions options;
  options.max_batch = ids.size();
  options.commit_window = std::chrono::milliseconds(2000);
  RequestDispatcher dispatcher(sys.agent.get(), options);
  std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
  for (size_t u = 0; u < ids.size(); ++u) {
    sessions.push_back(dispatcher.OpenSession());
  }

  Rng jitter(jitter_seed);
  std::vector<std::function<Status()>> users;
  for (size_t u = 0; u < ids.size(); ++u) {
    const uint64_t delay_us = jitter.Uniform(3000);
    users.push_back([&, u, delay_us]() -> Status {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      STEGHIDE_ASSIGN_OR_RETURN(const Bytes data,
                                sessions[u]->Read(ids[u], 0, payload));
      return data == sys.ExpectedBlock(u, 0)
                 ? Status::OK()
                 : Status::Internal("content mismatch");
    });
  }
  for (const Status& status : workload::RunOnThreads(std::move(users))) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  sessions.clear();
  dispatcher.Stop();

  // All k arrived within the window, so they committed as one group.
  EXPECT_EQ(dispatcher.stats().read_groups, 1u);
  EXPECT_EQ(dispatcher.stats().max_fill, ids.size());
  return sys.cache_traced.trace();
}

TEST(DispatchTraceEquivalenceTest, DispatchedGroupMatchesSequentialRequests) {
  // Twin systems: identical seeds, identical population and pre-warm
  // (24 records, an exact multiple of B = 8, so both start the measured
  // window with an empty agent buffer and identical level contents).
  const size_t kUsers = 6;
  System seq(777), dispatched(777);
  const auto seq_ids = seq.Populate(kUsers, 4);
  const auto dis_ids = dispatched.Populate(kUsers, 4);
  ASSERT_EQ(seq.agent->store().buffer_fill(), 0u);
  ASSERT_EQ(dispatched.agent->store().buffer_fill(), 0u);

  // Sequential reference: one read per user, one scan pass each.
  const size_t payload = seq.core.payload_size();
  seq.cache_traced.ClearTrace();
  for (size_t u = 0; u < kUsers; ++u) {
    auto data = seq.agent->Read(seq_ids[u], 0, payload);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, seq.ExpectedBlock(u, 0));
  }
  const IoTrace seq_trace = seq.cache_traced.trace();

  // Dispatched group: same k requests from real threads, one commit.
  const IoTrace group_trace = DispatchedGroupTrace(dispatched, dis_ids, 5);

  // The attacker-visible per-level touch multiset of the dispatched
  // group equals k sequential requests: same touch count per level, same
  // total event count, reads only.
  EXPECT_EQ(LevelTouchCounts(seq_trace), LevelTouchCounts(group_trace));
  EXPECT_EQ(seq_trace.size(), group_trace.size());
  uint64_t total = 0;
  for (const uint64_t count : LevelTouchCounts(group_trace)) total += count;
  EXPECT_GT(total, 0u);
  for (const TraceEvent& ev : group_trace) {
    EXPECT_EQ(ev.kind, TraceEvent::Kind::kRead);
  }
}

TEST(DispatchTraceEquivalenceTest, ArrivalOrderDoesNotChangeTheTouchCounts) {
  // Same group under two different thread-arrival jitters: the per-level
  // touch counts are identical regardless of arrival order.
  const size_t kUsers = 6;
  System a(778), b(778);
  const auto a_ids = a.Populate(kUsers, 4);
  const auto b_ids = b.Populate(kUsers, 4);

  const IoTrace trace_a = DispatchedGroupTrace(a, a_ids, 11);
  const IoTrace trace_b = DispatchedGroupTrace(b, b_ids, 97);
  EXPECT_EQ(LevelTouchCounts(trace_a), LevelTouchCounts(trace_b));
  EXPECT_EQ(trace_a.size(), trace_b.size());
}

// ---- session teardown ----------------------------------------------------

TEST(DispatchTeardownTest, SessionCloseMidWindowReleasesTheGroup) {
  // Regression: the fill target counts open sessions, so sessions that
  // close mid-window must shrink it. Here two idle sessions close while
  // two loaded ones have requests pending; the group must commit as soon
  // as the population drops to the pending count, not wait out a window
  // sized far beyond the test timeout.
  System sys(201);
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(2, 2);

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::seconds(30);
  RequestDispatcher dispatcher(sys.agent.get(), options);

  std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
  for (size_t u = 0; u < 4; ++u) sessions.push_back(dispatcher.OpenSession());

  const auto start = std::chrono::steady_clock::now();
  auto read0 = sessions[0]->AsyncRead(ids[0], 0, payload);
  auto read1 = sessions[1]->AsyncRead(ids[1], 0, payload);
  // Give the worker time to enter the linger (queue 2 < target 4), then
  // tear down the two sessions that will never submit.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sessions.resize(2);

  ASSERT_EQ(read0.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "group stalled on closed sessions";
  ASSERT_EQ(read1.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(20));

  auto data0 = read0.get();
  auto data1 = read1.get();
  ASSERT_TRUE(data0.ok());
  ASSERT_TRUE(data1.ok());
  EXPECT_EQ(*data0, sys.ExpectedBlock(0, 0));
  EXPECT_EQ(*data1, sys.ExpectedBlock(1, 0));
  sessions.clear();
  dispatcher.Stop();
  EXPECT_EQ(dispatcher.stats().requests, 2u);
}

TEST(DispatchTeardownTest, LastSessionCloseFlushesItsQueuedRequest) {
  // Regression: with every session closed, the fill target used to fall
  // back to max_batch — an async request whose session was torn down
  // right after submitting would stall for the whole commit window. The
  // sessions_seen_ latch makes an emptied session population target 1.
  System sys(202);
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(1, 2);

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::seconds(30);
  RequestDispatcher dispatcher(sys.agent.get(), options);

  // Two sessions, so the linger starts with target 2 > the one pending
  // request; both then close with the request still queued.
  auto submitter = dispatcher.OpenSession();
  auto bystander = dispatcher.OpenSession();
  const auto start = std::chrono::steady_clock::now();
  auto read = submitter->AsyncRead(ids[0], 0, payload);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  submitter.reset();
  bystander.reset();

  ASSERT_EQ(read.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "queued request stalled after all sessions closed";
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  auto data = read.get();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, sys.ExpectedBlock(0, 0));
  dispatcher.Stop();
}

TEST(DispatchTeardownTest, ChurningSessionsUnderLoadNeverStall) {
  // Sessions opening and closing continuously while loaded neighbours
  // keep submitting: no combination of mid-window closes may stall a
  // committed group or corrupt content.
  System sys(203);
  const size_t kUsers = 4;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(kUsers, 2);

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::milliseconds(20);
  RequestDispatcher dispatcher(sys.agent.get(), options);

  std::vector<std::function<Status()>> users;
  for (size_t u = 0; u < kUsers; ++u) {
    users.push_back([&, u]() -> Status {
      Rng rng(7000 + u);
      for (size_t op = 0; op < 8; ++op) {
        // A fresh session per op: every iteration closes mid-stream
        // relative to the other threads' windows.
        auto session = dispatcher.OpenSession();
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.Uniform(300)));
        STEGHIDE_ASSIGN_OR_RETURN(
            const Bytes back, session->Read(ids[u], 0, payload));
        if (back != sys.ExpectedBlock(u, 0)) {
          return Status::Internal("content mismatch under session churn");
        }
      }
      return Status::OK();
    });
  }
  for (const Status& status : workload::RunOnThreads(std::move(users))) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  dispatcher.Stop();
  EXPECT_EQ(dispatcher.stats().requests, kUsers * 8);
}

// ---- stress --------------------------------------------------------------

TEST(DispatchStressTest, ManyThreadsManyOpsKeepIntegrity) {
  System sys(991);
  const size_t kUsers = 8;
  const size_t kOps = 12;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(kUsers, 3);

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::milliseconds(2);
  RequestDispatcher dispatcher(sys.agent.get(), options);

  std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
  for (size_t u = 0; u < kUsers; ++u) sessions.push_back(dispatcher.OpenSession());

  // Each user owns one file: writes a versioned pattern to a random
  // block, immediately reads it back, and re-verifies a previously
  // written block — all with randomized arrival jitter.
  std::vector<std::function<Status()>> users;
  for (size_t u = 0; u < kUsers; ++u) {
    users.push_back([&, u]() -> Status {
      Rng rng(5000 + u);
      std::vector<Bytes> latest(3);
      for (size_t b = 0; b < 3; ++b) {
        latest[b] = sys.ExpectedBlock(u, b);
      }
      for (size_t op = 0; op < kOps; ++op) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.Uniform(400)));
        const uint64_t block = rng.Uniform(3);
        if (rng.Bernoulli(0.4)) {
          Bytes data(payload, static_cast<uint8_t>(u * 16 + op));
          STEGHIDE_RETURN_IF_ERROR(
              sessions[u]->Write(ids[u], block * payload, data));
          latest[block] = std::move(data);
        }
        STEGHIDE_ASSIGN_OR_RETURN(
            const Bytes back,
            sessions[u]->Read(ids[u], block * payload, payload));
        if (back != latest[block]) {
          return Status::Internal("stale or corrupt read");
        }
      }
      return Status::OK();
    });
  }
  for (const Status& status : workload::RunOnThreads(std::move(users))) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  sessions.clear();
  dispatcher.Stop();

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_GE(stats.requests, kUsers * kOps);
  EXPECT_GT(stats.grouped_requests, 0u);
  EXPECT_LE(stats.p50_latency_ms, stats.p99_latency_ms);
}

TEST(DispatchStressTest, StatsSnapshotDuringLoadIsTearFree) {
  // Pollers racing the worker's counter updates: stats() is assembled
  // from atomic cells, so a snapshot taken mid-commit must be
  // consistent (never torn, monotone counters, percentiles ordered).
  // The dispatcher is wired to a live registry + trace log so the
  // instrumented path itself runs under TSan too.
  System sys(993);
  const size_t kUsers = 6;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(kUsers, 3);

  obs::Registry registry;
  obs::TraceLog trace(1u << 12);
  trace.set_enabled(true);
  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::milliseconds(2);
  options.registry = &registry;
  options.trace = &trace;
  RequestDispatcher dispatcher(sys.agent.get(), options);

  std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
  for (size_t u = 0; u < kUsers; ++u) {
    sessions.push_back(dispatcher.OpenSession());
  }

  std::atomic<bool> done{false};
  std::thread poller([&] {
    uint64_t last = 0;
    uint64_t last_grouped = 0;
    while (!done.load(std::memory_order_acquire)) {
      const DispatcherStats s = dispatcher.stats();
      EXPECT_GE(s.requests, last);
      // Every commit's grouped bump is preceded by its submit bump, but
      // the poller's reads are not one instant: cells read later can
      // include progress the earlier reads missed. The order-robust
      // form bounds this iteration's requests by the PREVIOUS
      // iteration's grouped count.
      EXPECT_GE(s.requests, last_grouped);
      EXPECT_LE(s.p50_latency_ms, s.p99_latency_ms);
      last = s.requests;
      last_grouped = s.grouped_requests;
      // Snapshot and stats() read the same monotone cell at different
      // instants, so the earlier read can only be <= (exact equality is
      // asserted after quiescence below).
      const auto snap = registry.Snapshot();
      EXPECT_LE(static_cast<uint64_t>(snap.at("dispatcher.requests")),
                dispatcher.stats().requests);
    }
  });

  std::vector<std::function<Status()>> users;
  for (size_t u = 0; u < kUsers; ++u) {
    users.push_back([&, u]() -> Status {
      Rng rng(7000 + u);
      for (size_t op = 0; op < 10; ++op) {
        const uint64_t block = rng.Uniform(3);
        if (rng.Bernoulli(0.3)) {
          Bytes data(payload, static_cast<uint8_t>(u + op));
          STEGHIDE_RETURN_IF_ERROR(
              sessions[u]->Write(ids[u], block * payload, data));
        } else {
          STEGHIDE_RETURN_IF_ERROR(
              sessions[u]->Read(ids[u], block * payload, payload).status());
        }
      }
      return Status::OK();
    });
  }
  for (const Status& status : workload::RunOnThreads(std::move(users))) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  done.store(true, std::memory_order_release);
  poller.join();
  sessions.clear();
  dispatcher.Stop();

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, kUsers * 10);
  // Quiesced: the registry view and the stats() view agree exactly.
  EXPECT_EQ(static_cast<uint64_t>(
                registry.Snapshot().at("dispatcher.requests")),
            stats.requests);
  // Every submit opened an async trace interval and every completion
  // closed one.
  size_t begins = 0, ends = 0;
  for (const obs::TraceEvent& ev : trace.events()) {
    begins += ev.kind == obs::TraceEvent::Kind::kAsyncBegin;
    ends += ev.kind == obs::TraceEvent::Kind::kAsyncEnd;
  }
  if (trace.dropped() == 0) {
    EXPECT_EQ(begins, kUsers * 10);
    EXPECT_EQ(begins, ends);
  }
}

// ---- deamortized re-orders under the dispatcher ---------------------------

TEST(DispatchDeamortizedTest, ManyThreadsKeepIntegrityAcrossIncrementalChains) {
  // The ManyThreads stress on a deamortized store: every re-order now
  // runs as an incremental double-buffered chain advanced concurrently
  // by serving taxes and the dispatcher's idle pump — the TSan target
  // for the new path. Content must stay exact throughout.
  System sys(992, DeamortStoreOptions());
  const size_t kUsers = 8;
  const size_t kOps = 12;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(kUsers, 3);

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::milliseconds(2);
  options.maintenance_budget = 16;
  RequestDispatcher dispatcher(sys.agent.get(), options);

  std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
  for (size_t u = 0; u < kUsers; ++u) {
    sessions.push_back(dispatcher.OpenSession());
  }
  std::vector<std::function<Status()>> users;
  for (size_t u = 0; u < kUsers; ++u) {
    users.push_back([&, u]() -> Status {
      Rng rng(6000 + u);
      std::vector<Bytes> latest(3);
      for (size_t b = 0; b < 3; ++b) latest[b] = sys.ExpectedBlock(u, b);
      for (size_t op = 0; op < kOps; ++op) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.Uniform(400)));
        const uint64_t block = rng.Uniform(3);
        if (rng.Bernoulli(0.5)) {
          Bytes data(payload, static_cast<uint8_t>(u * 16 + op));
          STEGHIDE_RETURN_IF_ERROR(
              sessions[u]->Write(ids[u], block * payload, data));
          latest[block] = std::move(data);
        }
        STEGHIDE_ASSIGN_OR_RETURN(
            const Bytes back,
            sessions[u]->Read(ids[u], block * payload, payload));
        if (back != latest[block]) {
          return Status::Internal("stale or corrupt read under rebuild");
        }
      }
      return Status::OK();
    });
  }
  for (const Status& status : workload::RunOnThreads(std::move(users))) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  sessions.clear();
  dispatcher.Stop();
  EXPECT_GT(sys.agent->store().stats().reorders, 0u);
}

TEST(DispatchDeamortizedTest, ReaderCountsInstallsObservedMidBatch) {
  // Epoch consistency at the reader seam: a batch spans several store
  // critical sections, and chain installs may land between them. The
  // reader's reorder_epoch_flips stat counts those mid-batch installs —
  // here the miss-fill MultiInsert triggers chains whose taxes install
  // inside the very batch, so reads demonstrably keep flowing across
  // permutation flips instead of being fenced out by them.
  System sys(994, DeamortStoreOptions());
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(6, 4, /*prewarm=*/false);

  // First-touch reads: each batch miss-fills 4 blocks, and the fills'
  // flushes install mid-batch once the buffer cycles.
  for (size_t f = 0; f < ids.size(); ++f) {
    ASSERT_TRUE(sys.agent->Read(ids[f], 0, 4 * payload).ok());
  }
  // Cached re-reads keep staging records, so chains keep installing.
  for (int round = 0; round < 8; ++round) {
    for (size_t f = 0; f < ids.size(); ++f) {
      ASSERT_TRUE(sys.agent->Read(ids[f], 0, 4 * payload).ok());
    }
  }
  EXPECT_GT(sys.agent->reader().stats().reorder_epoch_flips, 0u)
      << "no install was ever observed inside a reader batch";
}

TEST(DispatchDeamortizedTest, IdleDispatcherPumpsReorderBacklogDry) {
  // A large chain left pending must be drained by the dispatcher's idle
  // maintenance pump, not by serving taxes: park a deep rebuild in the
  // store while the worker sleeps, wake it with a single request, and
  // watch the backlog go dry with no further traffic.
  System sys(993, DeamortStoreOptions());
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(1, 3);

  DispatcherOptions options;
  options.max_batch = 4;
  options.commit_window = std::chrono::milliseconds(1);
  options.maintenance_budget = 8;
  RequestDispatcher dispatcher(sys.agent.get(), options);
  auto session = dispatcher.OpenSession();

  // Build a big backlog directly at the store layer (the dispatcher's
  // condvar is not signalled by store-internal work, so the worker stays
  // asleep and cannot drain it yet). Pre-fill deep levels first — with
  // everything drained — so the burst below triggers a cascade chain too
  // large for any single serving tax slice to finish.
  auto& store = sys.agent->store();
  uint64_t next_id = 1 << 20;
  {
    Bytes fill(8 * store.payload_size(), 0x11);
    std::vector<oblivious::RecordId> ids(8);
    for (int round = 0; round < 10; ++round) {
      for (auto& id : ids) id = next_id++;
      ASSERT_TRUE(store.MultiInsert(ids, fill.data()).ok());
      bool more = true;
      while (more) ASSERT_TRUE(store.StepReorder(1u << 20, &more).ok());
    }
  }
  Bytes payloads(32 * store.payload_size(), 0x5a);
  std::vector<oblivious::RecordId> fresh(32);
  for (auto& id : fresh) id = next_id++;
  bool pending = false;
  for (int round = 0; round < 8 && !pending; ++round) {
    // Re-staging the same ids keeps the flush pressure up without
    // growing the present set past capacity.
    ASSERT_TRUE(store.MultiInsert(fresh, payloads.data()).ok());
    pending = store.reorder_pending();
  }
  ASSERT_TRUE(pending) << "no re-order chain ever went pending";

  // One request wakes the worker; after committing it the idle loop
  // pumps the chain dry.
  ASSERT_TRUE(session->Read(ids[0], 0, payload).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (store.reorder_pending() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(store.reorder_pending())
      << "idle pump failed to drain the chain";
  EXPECT_GT(dispatcher.stats().maintenance_pumps, 0u);

  // Served content is intact after the idle-time installs.
  auto back = session->Read(ids[0], 0, payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, sys.ExpectedBlock(0, 0));
  session.reset();
  dispatcher.Stop();
}

}  // namespace
}  // namespace steghide::agent
