#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/bytes.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace steghide {
namespace {

// ---- Status ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNoSpace), "NoSpace");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kPermissionDenied),
            "PermissionDenied");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::IoError("boom"); };
  auto outer = [&]() -> Status {
    STEGHIDE_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

// ---- Result ----------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("x");
    return 5;
  };
  auto use = [&](bool fail) -> Result<int> {
    STEGHIDE_ASSIGN_OR_RETURN(const int v, make(fail));
    return v * 2;
  };
  EXPECT_EQ(*use(false), 10);
  EXPECT_FALSE(use(true).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

// ---- Rng -------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(5, 8));
  EXPECT_EQ(seen, (std::set<uint64_t>{5, 6, 7, 8}));
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(3);
  constexpr int kBins = 10;
  constexpr int kDraws = 100000;
  int counts[kBins] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.Uniform(kBins)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBins, kDraws / kBins * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(RngTest, FillCoversAllBytes) {
  Rng rng(6);
  std::vector<uint8_t> buf(1001, 0);
  rng.Fill(buf.data(), buf.size());
  // All-zero after fill would mean bytes were skipped.
  EXPECT_NE(std::count(buf.begin(), buf.end(), 0), 1001);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(7);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---- Histogram -------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.median(), 3.0);
  EXPECT_NEAR(h.stddev(), 1.5811, 1e-3);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Add(0.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(CountHistogramTest, CountsAndTotals) {
  CountHistogram h(4);
  h.Add(0);
  h.Add(3);
  h.Add(3);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.num_bins(), 4u);
}

// ---- bytes -----------------------------------------------------------

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(data), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), data);
  EXPECT_EQ(FromHex("0001ABFF"), data);
}

TEST(BytesTest, FromHexRejectsMalformed) {
  EXPECT_TRUE(FromHex("abc").empty());   // odd length
  EXPECT_TRUE(FromHex("zz").empty());    // non-hex
  EXPECT_TRUE(FromHex("").empty());      // empty is empty
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, BigEndianRoundTrip) {
  uint8_t buf[8];
  StoreBigEndian32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(LoadBigEndian32(buf), 0x01020304u);

  StoreBigEndian64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(LoadBigEndian64(buf), 0x0102030405060708ull);
}

TEST(BytesTest, XorBytes) {
  uint8_t dst[3] = {0xff, 0x0f, 0x00};
  const uint8_t src[3] = {0xf0, 0x0f, 0xaa};
  XorBytes(dst, src, 3);
  EXPECT_EQ(dst[0], 0x0f);
  EXPECT_EQ(dst[1], 0x00);
  EXPECT_EQ(dst[2], 0xaa);
}

}  // namespace
}  // namespace steghide
