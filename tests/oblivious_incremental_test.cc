// Deamortized re-order coverage: resumable merge phases, double-buffered
// level flips, scans served against the old permutation mid-rebuild,
// flush coalescing, tombstones, and the trace-equivalence pin — the
// combined serving + incremental-re-order touch counts per level equal
// the blocking schedule's, request for request, in the strict schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "oblivious/merge_sort.h"
#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "storage/trace_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::oblivious {
namespace {

ObliviousStoreOptions DeamortOptions(uint64_t buffer, uint64_t capacity,
                                     bool strict, uint64_t seed) {
  const uint64_t hierarchy = 2 * capacity - 2 * buffer;
  ObliviousStoreOptions opts;
  opts.buffer_blocks = buffer;
  opts.capacity_blocks = capacity;
  opts.partition_base = 0;
  opts.scratch_base = hierarchy;
  opts.shadow_base = hierarchy + capacity;
  opts.deamortize_reorders = true;
  opts.strict_reorder_schedule = strict;
  opts.drbg_seed = seed;
  // Pace at the floor so chains linger across ops — the tests want to
  // observe serving mid-rebuild, not have taxes drain everything eagerly.
  opts.reorder_step_blocks = 1;
  return opts;
}

// Runs StepReorder until the chain drains; asserts convergence.
void DrainStore(ObliviousStore& store) {
  bool more = true;
  int iters = 0;
  while (more) {
    ASSERT_TRUE(store.StepReorder(1u << 20, &more).ok());
    ASSERT_LT(++iters, 10000) << "re-order chain failed to drain";
  }
}

uint64_t DeviceBlocksFor(const ObliviousStoreOptions& opts) {
  const uint64_t hierarchy =
      2 * opts.capacity_blocks - 2 * opts.buffer_blocks;
  return hierarchy + opts.capacity_blocks +
         (opts.deamortize_reorders ? hierarchy : 0) + 4;
}

Bytes PayloadFor(const ObliviousStore& store, uint8_t seed) {
  Bytes p(store.payload_size());
  for (size_t i = 0; i < p.size(); ++i) p[i] = static_cast<uint8_t>(seed + i);
  return p;
}

// ---- Resumable merge phases ----------------------------------------------

class ResumableMergeTest : public ::testing::Test {
 protected:
  ResumableMergeTest() : dev_(512, 4096), codec_(4096), drbg_(uint64_t{31}) {
    EXPECT_TRUE(cipher_.SetKey(drbg_.Generate(16)).ok());
  }

  void PutBlock(uint64_t pos, const Bytes& payload) {
    Bytes block(4096);
    ASSERT_TRUE(codec_.Seal(cipher_, drbg_, payload.data(), block.data()).ok());
    ASSERT_TRUE(dev_.WriteBlock(pos, block.data()).ok());
  }

  Bytes GetBlock(uint64_t pos) {
    Bytes block(4096), payload(codec_.payload_size());
    EXPECT_TRUE(dev_.ReadBlock(pos, block.data()).ok());
    EXPECT_TRUE(codec_.Open(cipher_, block.data(), payload.data()).ok());
    return payload;
  }

  storage::MemBlockDevice dev_;
  stegfs::BlockCodec codec_;
  crypto::HashDrbg drbg_;
  crypto::CbcCipher cipher_;
};

TEST_F(ResumableMergeTest, ChunkedMergeStepsMatchBlockingFinish) {
  constexpr uint64_t kItems = 40;
  constexpr uint64_t kRun = 8;
  std::map<uint64_t, Bytes> payloads;
  std::vector<uint64_t> tags(kItems);
  Rng rng = testing::MakeTestRng();
  for (uint64_t i = 0; i < kItems; ++i) {
    Bytes p(codec_.payload_size());
    rng.Fill(p.data(), p.size());
    payloads[i] = p;
    PutBlock(i, p);
    tags[i] = rng.Next();
  }

  ExternalMergeSorter sorter(&dev_, &codec_, &cipher_, &drbg_, 64, kRun);
  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(sorter.Add(i, tags[i], i).ok());
  }
  ASSERT_TRUE(sorter.BeginMerge(/*dst_base=*/256).ok());
  // Adds are rejected once the merge phase is armed.
  EXPECT_FALSE(sorter.AddInMemory(payloads[0], 1, 1).ok());

  bool done = false;
  int steps = 0;
  uint64_t consumed_total = 0;
  while (!done) {
    uint64_t consumed = 0;
    ASSERT_TRUE(sorter.MergeStep(7, &done, &consumed).ok());
    consumed_total += consumed;
    ASSERT_LT(++steps, 1000) << "merge failed to converge";
    if (!done) EXPECT_GT(consumed, 0u) << "stalled step";
  }
  EXPECT_GT(steps, 3) << "budget 7 should take many steps for 40 items";
  EXPECT_EQ(sorter.merge_remaining_blocks(), 0u);
  // Every merge I/O was accounted to some step: total traffic minus the
  // Add() input reads and the run spills issued during the add phase.
  EXPECT_EQ(consumed_total,
            sorter.stats().reads + sorter.stats().writes - 2 * kItems);

  std::vector<uint64_t> order = sorter.TakeOrder();
  ASSERT_EQ(order.size(), kItems);
  std::set<uint64_t> seen;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) EXPECT_LE(tags[order[i - 1]], tags[order[i]]);
    seen.insert(order[i]);
    EXPECT_EQ(GetBlock(256 + i), payloads[order[i]]) << "slot " << i;
  }
  EXPECT_EQ(seen.size(), kItems);

  // Reset recycles the sorter for another (in-memory) re-order.
  sorter.Reset();
  EXPECT_EQ(sorter.stats().reads, 0u);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(sorter.AddInMemory(payloads[i], 100 - i, i).ok());
  }
  auto again = sorter.Finish(/*dst_base=*/300);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, (std::vector<uint64_t>{3, 2, 1, 0}));
}

// ---- Deamortized store ---------------------------------------------------

TEST(DeamortizedStoreTest, ShadowGeometryValidated) {
  ObliviousStoreOptions opts = DeamortOptions(4, 32, false, 5);
  storage::MemBlockDevice small(100, 4096);  // needs 56+32+56 = 144
  EXPECT_FALSE(ObliviousStore::Create(&small, opts).ok());

  storage::MemBlockDevice dev(DeviceBlocksFor(opts), 4096);
  ObliviousStoreOptions overlap = opts;
  overlap.shadow_base = 10;  // inside the hierarchy
  EXPECT_FALSE(ObliviousStore::Create(&dev, overlap).ok());
  overlap = opts;
  overlap.shadow_base = opts.scratch_base;  // on top of scratch
  EXPECT_FALSE(ObliviousStore::Create(&dev, overlap).ok());
  EXPECT_TRUE(ObliviousStore::Create(&dev, opts).ok());
}

TEST(DeamortizedStoreTest, InstallFlipsBasesIntoShadowRegion) {
  ObliviousStoreOptions opts = DeamortOptions(4, 32, false, 7);
  storage::MemBlockDevice dev(DeviceBlocksFor(opts), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const std::vector<uint64_t> primary_bases = (*store)->LevelBases();
  // First flush trigger: B inserts; drain whatever the taxes left over.
  for (uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(
        (*store)->Insert(id, PayloadFor(**store, static_cast<uint8_t>(id)).data()).ok());
  }
  DrainStore(**store);
  EXPECT_FALSE((*store)->reorder_pending());
  EXPECT_GE((*store)->reorder_epoch(), 1u);
  EXPECT_GE((*store)->stats().reorders, 1u);

  // The rebuilt level 1 now lives in its shadow region (ping-pong flip).
  const std::vector<uint64_t> flipped = (*store)->LevelBases();
  EXPECT_NE(flipped[0], primary_bases[0]);
  EXPECT_GE(flipped[0], opts.shadow_base);

  // Every record still readable, served off the flipped permutation.
  Bytes out((*store)->payload_size());
  for (uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE((*store)->Read(id, out.data()).ok());
    EXPECT_EQ(out, PayloadFor(**store, static_cast<uint8_t>(id)));
  }
}

TEST(DeamortizedStoreTest, ScansServeOldPermutationDuringRebuild) {
  ObliviousStoreOptions opts = DeamortOptions(4, 32, false, 11);
  storage::MemBlockDevice dev(DeviceBlocksFor(opts), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok());

  // Park records in the levels (deep cascades make the chains long
  // enough to outlive the per-op taxes), then catch a pending chain and
  // read everything back while it is in flight: scans must keep serving
  // correct payloads from the old permutation and the ghost snapshot.
  std::map<uint64_t, uint8_t> mirror;
  for (uint64_t id = 0; id < 24; ++id) {
    mirror[id] = static_cast<uint8_t>(id * 3 + 1);
    ASSERT_TRUE((*store)->Insert(id, PayloadFor(**store, mirror[id]).data()).ok());
  }
  DrainStore(**store);
  bool caught_pending = false;
  uint64_t next_id = 100;
  for (int round = 0; round < 16 && !caught_pending; ++round) {
    mirror[next_id] = static_cast<uint8_t>(next_id);
    ASSERT_TRUE(
        (*store)->Insert(next_id, PayloadFor(**store, mirror[next_id]).data()).ok());
    ++next_id;
    caught_pending = (*store)->reorder_pending();
  }
  ASSERT_TRUE(caught_pending) << "no chain outlived its triggering op";

  Bytes out((*store)->payload_size());
  bool observed_pending_read = false;
  for (const auto& [id, seed] : mirror) {
    if ((*store)->reorder_pending()) observed_pending_read = true;
    ASSERT_TRUE((*store)->Read(id, out.data()).ok()) << "id " << id;
    EXPECT_EQ(out, PayloadFor(**store, seed)) << "id " << id;
  }
  EXPECT_TRUE(observed_pending_read);

  // And after a full drain the same holds.
  DrainStore(**store);
  for (const auto& [id, seed] : mirror) {
    ASSERT_TRUE((*store)->Read(id, out.data()).ok());
    EXPECT_EQ(out, PayloadFor(**store, seed));
  }
}

TEST(DeamortizedStoreTest, RemoveDuringChainIsNotResurrected) {
  ObliviousStoreOptions opts = DeamortOptions(4, 32, false, 13);
  opts.reorder_step_blocks = 1;
  storage::MemBlockDevice dev(DeviceBlocksFor(opts), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok());

  for (uint64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE((*store)->Insert(id, PayloadFor(**store, 1).data()).ok());
  }
  DrainStore(**store);
  // Trigger a chain whose snapshot includes level-resident records...
  bool caught_pending = false;
  uint64_t flush_id = 50;
  for (int round = 0; round < 16 && !caught_pending; ++round) {
    ASSERT_TRUE(
        (*store)->Insert(flush_id, PayloadFor(**store, 2).data()).ok());
    ++flush_id;
    caught_pending = (*store)->reorder_pending();
  }
  ASSERT_TRUE(caught_pending) << "no chain outlived its triggering op";
  // ...then evict mid-flight: the tombstone must strip the ids from
  // every index the chain installs.
  ASSERT_TRUE((*store)->Remove(3).ok());
  ASSERT_TRUE((*store)->Remove(50).ok());  // one from the flush snapshot too
  DrainStore(**store);

  Bytes out((*store)->payload_size());
  EXPECT_FALSE((*store)->Contains(3));
  EXPECT_FALSE((*store)->Contains(50));
  EXPECT_EQ((*store)->Read(3, out.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->Read(50, out.data()).code(), StatusCode::kNotFound);
  // Survivors intact, re-insertion works.
  for (uint64_t id = 0; id < 20; ++id) {
    if (id == 3) continue;
    ASSERT_TRUE((*store)->Read(id, out.data()).ok()) << "id " << id;
  }
  ASSERT_TRUE((*store)->Insert(3, PayloadFor(**store, 9).data()).ok());
  ASSERT_TRUE((*store)->Read(3, out.data()).ok());
  EXPECT_EQ(out, PayloadFor(**store, 9));
}

// Mirror soak across geometries and schedules: whatever interleaving of
// serving and incremental re-order steps occurs, contents match a
// blocking mirror.
struct SoakParam {
  uint64_t buffer;
  uint64_t capacity;
  bool strict;
};

class DeamortizedSoakTest : public ::testing::TestWithParam<SoakParam> {};

TEST_P(DeamortizedSoakTest, MatchesMirrorProperty) {
  const SoakParam param = GetParam();
  ObliviousStoreOptions opts =
      DeamortOptions(param.buffer, param.capacity, param.strict,
                     1000 + param.buffer * 10 + param.capacity);
  storage::MemBlockDevice dev(DeviceBlocksFor(opts), 4096);
  auto store = ObliviousStore::Create(&dev, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::vector<uint8_t> mirror(param.capacity, 0);
  std::vector<uint8_t> present(param.capacity, 0);
  Bytes payload((*store)->payload_size());
  Bytes out((*store)->payload_size());
  Rng rng(opts.drbg_seed);
  for (int op = 0; op < 600; ++op) {
    const uint64_t id = rng.Uniform(param.capacity);
    const int action = static_cast<int>(rng.Uniform(5));
    if (action == 4) {
      // Random incremental stepping with random budgets, like an idle
      // dispatcher pump firing at arbitrary moments.
      ASSERT_TRUE((*store)->StepReorder(1 + rng.Uniform(64)).ok());
      continue;
    }
    if (action == 3 && present[id]) {
      ASSERT_TRUE((*store)->Remove(id).ok());
      present[id] = 0;
      continue;
    }
    if (action == 0 || !present[id]) {
      const uint8_t v = static_cast<uint8_t>(rng.Next());
      std::fill(payload.begin(), payload.end(), v);
      ASSERT_TRUE((*store)->Insert(id, payload.data()).ok()) << "op " << op;
      mirror[id] = v;
      present[id] = 1;
    } else if (action == 1) {
      const uint8_t v = static_cast<uint8_t>(rng.Next());
      std::fill(payload.begin(), payload.end(), v);
      ASSERT_TRUE((*store)->Write(id, payload.data()).ok()) << "op " << op;
      mirror[id] = v;
    } else {
      ASSERT_TRUE((*store)->Read(id, out.data()).ok()) << "op " << op;
      ASSERT_EQ(out[0], mirror[id]) << "op " << op << " id " << id;
      ASSERT_EQ(out.back(), mirror[id]);
    }
  }
  // Drain and final sweep.
  bool more = true;
  while (more) ASSERT_TRUE((*store)->StepReorder(1u << 20, &more).ok());
  for (uint64_t id = 0; id < param.capacity; ++id) {
    if (!present[id]) continue;
    ASSERT_TRUE((*store)->Read(id, out.data()).ok()) << "final id " << id;
    ASSERT_EQ(out[0], mirror[id]) << "final id " << id;
  }
  const auto stats = (*store)->stats();
  EXPECT_GT(stats.reorders, 0u);
  // Shallow hierarchies (< 3 levels) auto-fall back to blocking
  // re-orders; incremental steps only happen on deep ones.
  const bool deep = (*store)->height() >= 3;
  if (!param.strict && deep) EXPECT_GT(stats.reorder_steps, 0u);
  if (!deep) EXPECT_EQ(stats.reorder_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DeamortizedSoakTest,
    ::testing::Values(SoakParam{4, 32, false}, SoakParam{4, 32, true},
                      SoakParam{4, 64, false}, SoakParam{8, 64, true},
                      SoakParam{1, 16, false}, SoakParam{16, 32, false}));

TEST(DeamortizedStoreTest, DeferralCoalescesFlushes) {
  // Same grouped churn (the dispatcher's shape: MultiRead groups of B)
  // on a blocking twin and a deferring deamortized store, over a
  // hierarchy deep enough for coalesced flush sets (limit 4B) to fold
  // level 1: the deamortized store must issue far fewer flushes and
  // strictly less re-order I/O — coalesced records skip upper-level
  // rewrites. (Under k = 1 trickle serving the volumes are a wash; the
  // coalescing win is a function of staging rate, by design.)
  const uint64_t kB = 16, kN = 256;
  const auto churn = [&](ObliviousStore& store) {
    Bytes payload(store.payload_size());
    Rng rng(4242);
    for (uint64_t id = 0; id < kN; ++id) {
      std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(id));
      EXPECT_TRUE(store.Insert(id, payload.data()).ok());
    }
    std::vector<RecordId> ids(kB);
    Bytes outs(kB * store.payload_size());
    for (int op = 0; op < 40; ++op) {
      for (RecordId& id : ids) id = rng.Uniform(kN);
      EXPECT_TRUE(store.MultiRead(ids, outs.data()).ok()) << "op " << op;
      for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(outs[i * store.payload_size()], static_cast<uint8_t>(ids[i]))
            << "op " << op << " request " << i;
      }
    }
    // Count the tail chain's I/O too: the comparison is total volume,
    // not just what landed inside the serving window.
    bool more = true;
    int iters = 0;
    while (more) {
      EXPECT_TRUE(store.StepReorder(1u << 20, &more).ok());
      if (++iters > 10000) break;
    }
  };

  ObliviousStoreOptions blocking_opts = DeamortOptions(kB, kN, false, 21);
  blocking_opts.deamortize_reorders = false;
  storage::MemBlockDevice blocking_dev(DeviceBlocksFor(blocking_opts), 4096);
  auto blocking = ObliviousStore::Create(&blocking_dev, blocking_opts);
  ASSERT_TRUE(blocking.ok());
  churn(**blocking);

  ObliviousStoreOptions deamort_opts = DeamortOptions(kB, kN, false, 21);
  storage::MemBlockDevice deamort_dev(DeviceBlocksFor(deamort_opts), 4096);
  auto deamort = ObliviousStore::Create(&deamort_dev, deamort_opts);
  ASSERT_TRUE(deamort.ok());
  churn(**deamort);

  const auto bs = (*blocking)->stats();
  const auto ds = (*deamort)->stats();
  EXPECT_GT(ds.deferred_flushes, 0u);
  EXPECT_LT(ds.buffer_flushes, bs.buffer_flushes);
  EXPECT_LT(ds.reorder_reads + ds.reorder_writes,
            bs.reorder_reads + bs.reorder_writes);
}

// ---- Trace equivalence (the acceptance pin) -------------------------------

struct RegionCounts {
  uint64_t reads = 0;
  uint64_t writes = 0;
};

// Maps a block to its level (either region: primary or shadow mirror) or
// to the scratch partition (level count), folding the double-buffered
// layout back onto the logical hierarchy.
size_t RegionOf(uint64_t block, const ObliviousStoreOptions& opts) {
  const uint64_t hierarchy = 2 * opts.capacity_blocks - 2 * opts.buffer_blocks;
  uint64_t offset = ~uint64_t{0};
  if (block >= opts.partition_base && block < opts.partition_base + hierarchy) {
    offset = block - opts.partition_base;
  } else if (opts.deamortize_reorders && block >= opts.shadow_base &&
             block < opts.shadow_base + hierarchy) {
    offset = block - opts.shadow_base;
  } else {
    return SIZE_MAX;  // scratch / out of range
  }
  size_t level = 0;
  for (uint64_t cap = 2 * opts.buffer_blocks; offset >= cap; cap *= 2) {
    offset -= cap;
    ++level;
  }
  return level;
}

TEST(DeamortizedTraceTest, StrictScheduleKeepsBlockingTouchCounts) {
  // Identical request schedule (inserts, reads, hidden updates) against
  // a blocking store and a strict-schedule deamortized store. Pin: per
  // level, the combined serving-probe + re-order-sweep read count and
  // the re-order write count are equal request for request; re-order
  // writes stay the sequential region sweep; scratch traffic matches.
  const uint64_t kB = 4, kN = 64;
  const auto schedule = [](ObliviousStore& store,
                           std::vector<std::vector<RegionCounts>>& per_op,
                           storage::TraceBlockDevice& trace,
                           const ObliviousStoreOptions& opts) {
    const int levels = store.height();
    Bytes payload(store.payload_size());
    Bytes out(store.payload_size());
    Rng rng(777);
    const auto run_op = [&](const std::function<void()>& op) {
      trace.ClearTrace();
      op();
      std::vector<RegionCounts> counts(levels + 1);
      for (const storage::TraceEvent& ev : trace.trace()) {
        size_t region = RegionOf(ev.block_id, opts);
        if (region == SIZE_MAX) region = levels;  // scratch bucket
        ASSERT_LE(region, static_cast<size_t>(levels));
        if (ev.kind == storage::TraceEvent::Kind::kRead) {
          ++counts[region].reads;
        } else {
          ++counts[region].writes;
        }
      }
      per_op.push_back(std::move(counts));
    };
    for (uint64_t id = 0; id < 48; ++id) {
      std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(id));
      run_op([&] { ASSERT_TRUE(store.Insert(id, payload.data()).ok()); });
    }
    for (int op = 0; op < 200; ++op) {
      const uint64_t id = rng.Uniform(48);
      if (rng.Bernoulli(0.25)) {
        std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(op));
        run_op([&] { ASSERT_TRUE(store.Write(id, payload.data()).ok()); });
      } else {
        run_op([&] { ASSERT_TRUE(store.Read(id, out.data()).ok()); });
      }
    }
  };

  ObliviousStoreOptions blocking_opts = DeamortOptions(kB, kN, true, 31);
  blocking_opts.deamortize_reorders = false;
  storage::MemBlockDevice blocking_mem(DeviceBlocksFor(blocking_opts) + 120,
                                       4096);
  storage::TraceBlockDevice blocking_trace(&blocking_mem);
  auto blocking = ObliviousStore::Create(&blocking_trace, blocking_opts);
  ASSERT_TRUE(blocking.ok());
  std::vector<std::vector<RegionCounts>> blocking_ops;
  schedule(**blocking, blocking_ops, blocking_trace, blocking_opts);

  ObliviousStoreOptions strict_opts = DeamortOptions(kB, kN, true, 31);
  storage::MemBlockDevice strict_mem(DeviceBlocksFor(strict_opts), 4096);
  storage::TraceBlockDevice strict_trace(&strict_mem);
  auto strict = ObliviousStore::Create(&strict_trace, strict_opts);
  ASSERT_TRUE(strict.ok());
  std::vector<std::vector<RegionCounts>> strict_ops;
  schedule(**strict, strict_ops, strict_trace, strict_opts);

  // Drain the strict store's trailing chain — blocking did all its work
  // inline, so the comparison must include the strict schedule's last
  // increments — counting that I/O into the same buckets.
  ASSERT_EQ(blocking_ops.size(), strict_ops.size());
  const size_t buckets = blocking_ops.front().size();
  std::vector<RegionCounts> blocking_sum(buckets), strict_sum(buckets);
  strict_trace.ClearTrace();
  DrainStore(**strict);
  for (const storage::TraceEvent& ev : strict_trace.trace()) {
    size_t region = RegionOf(ev.block_id, strict_opts);
    if (region == SIZE_MAX) region = buckets - 1;  // scratch bucket
    if (ev.kind == storage::TraceEvent::Kind::kRead) {
      ++strict_sum[region].reads;
    } else {
      ++strict_sum[region].writes;
    }
  }

  // The strict schedule keeps the blocking flush trigger points, so the
  // chain work of flush n always completes before flush n+1 begins —
  // the same window blocking executes it in. Summed over the schedule,
  // the per-level touch multiset (read and write counts against either
  // of a level's regions, plus scratch) must therefore be *identical*:
  // deamortizing re-orders the interleaving without changing what is
  // touched per level — the §5.1.2 obliviousness argument.
  for (size_t op = 0; op < blocking_ops.size(); ++op) {
    for (size_t r = 0; r < buckets; ++r) {
      blocking_sum[r].reads += blocking_ops[op][r].reads;
      blocking_sum[r].writes += blocking_ops[op][r].writes;
      strict_sum[r].reads += strict_ops[op][r].reads;
      strict_sum[r].writes += strict_ops[op][r].writes;
    }
  }
  for (size_t r = 0; r < buckets; ++r) {
    EXPECT_EQ(blocking_sum[r].reads, strict_sum[r].reads)
        << (r + 1 > static_cast<size_t>((*blocking)->height())
                ? "scratch"
                : "level")
        << " " << r + 1 << " read count";
    EXPECT_EQ(blocking_sum[r].writes, strict_sum[r].writes)
        << (r + 1 > static_cast<size_t>((*blocking)->height())
                ? "scratch"
                : "level")
        << " " << r + 1 << " write count";
  }

  const auto bstats = (*blocking)->stats();
  const auto sstats = (*strict)->stats();
  EXPECT_EQ(bstats.buffer_flushes, sstats.buffer_flushes);
  EXPECT_EQ(bstats.reorders, sstats.reorders);
  EXPECT_EQ(bstats.level_probe_reads, sstats.level_probe_reads);
  EXPECT_EQ(bstats.scan_passes, sstats.scan_passes);
  EXPECT_EQ(bstats.reorder_reads, sstats.reorder_reads);
  EXPECT_EQ(bstats.reorder_writes, sstats.reorder_writes);
}

TEST(DeamortizedTraceTest, ReorderWritesAreSequentialRegionSweeps) {
  // The data-independence half of the obliviousness argument: every
  // write a deamortized re-order issues to a level region continues a
  // sequential sweep from the region's base (ascending, no holes), no
  // matter how serving interleaves with the chain.
  ObliviousStoreOptions opts = DeamortOptions(4, 32, false, 41);
  storage::MemBlockDevice mem(DeviceBlocksFor(opts), 4096);
  storage::TraceBlockDevice trace(&mem);
  auto store = ObliviousStore::Create(&trace, opts);
  ASSERT_TRUE(store.ok());

  Bytes payload((*store)->payload_size());
  Bytes out((*store)->payload_size());
  Rng rng(99);
  for (uint64_t id = 0; id < 32; ++id) {
    std::fill(payload.begin(), payload.end(), static_cast<uint8_t>(id));
    ASSERT_TRUE((*store)->Insert(id, payload.data()).ok());
  }
  for (int op = 0; op < 200; ++op) {
    ASSERT_TRUE((*store)->Read(rng.Uniform(32), out.data()).ok());
    if (op % 3 == 0) ASSERT_TRUE((*store)->StepReorder(8).ok());
  }

  const uint64_t hierarchy = 2 * opts.capacity_blocks - 2 * opts.buffer_blocks;
  const auto region_start = [&](uint64_t block) -> uint64_t {
    // Start block of the (primary or shadow) region containing `block`.
    const uint64_t origin = block < hierarchy ? 0 : opts.shadow_base;
    uint64_t offset = block - origin;
    uint64_t start = origin;
    for (uint64_t cap = 2 * opts.buffer_blocks; offset >= cap; cap *= 2) {
      offset -= cap;
      start += cap;
    }
    return start;
  };
  std::map<uint64_t, uint64_t> next_expected;  // region start -> next offset
  for (const storage::TraceEvent& ev : trace.trace()) {
    if (ev.kind != storage::TraceEvent::Kind::kWrite) continue;
    if (RegionOf(ev.block_id, opts) == SIZE_MAX) continue;  // scratch
    const uint64_t start = region_start(ev.block_id);
    const uint64_t offset = ev.block_id - start;
    auto [it, inserted] = next_expected.try_emplace(start, 0);
    if (offset != it->second) {
      // A new sweep may restart at the region base.
      ASSERT_EQ(offset, 0u) << "non-sequential re-order write at block "
                            << ev.block_id;
      it->second = 0;
    }
    it->second = offset + 1;
  }
  EXPECT_FALSE(next_expected.empty());
}

}  // namespace
}  // namespace steghide::oblivious
