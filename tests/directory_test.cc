#include <gtest/gtest.h>

#include "agent/volatile_agent.h"
#include "stegfs/directory.h"
#include "storage/mem_block_device.h"

namespace steghide::stegfs {
namespace {

FileAccessKey TestFak(uint64_t loc, uint8_t seed) {
  return FileAccessKey{loc, Bytes(16, seed), Bytes(16, uint8_t(seed + 1))};
}

TEST(DirectoryTest, AddLookupRemove) {
  Directory dir;
  ASSERT_TRUE(dir.Add({"report.doc", TestFak(10, 1), false}).ok());
  ASSERT_TRUE(dir.Add({"sub", TestFak(20, 2), true}).ok());
  EXPECT_EQ(dir.size(), 2u);

  auto entry = dir.Lookup("report.doc");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->fak.header_location, 10u);
  EXPECT_FALSE(entry->is_directory);
  EXPECT_TRUE(dir.Lookup("sub")->is_directory);
  EXPECT_FALSE(dir.Lookup("nope").ok());

  ASSERT_TRUE(dir.Remove("report.doc").ok());
  EXPECT_FALSE(dir.Contains("report.doc"));
  EXPECT_EQ(dir.Remove("report.doc").code(), StatusCode::kNotFound);
}

TEST(DirectoryTest, DuplicateAndInvalidNamesRejected) {
  Directory dir;
  ASSERT_TRUE(dir.Add({"a", TestFak(1, 1), false}).ok());
  EXPECT_EQ(dir.Add({"a", TestFak(2, 2), false}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(dir.Add({"", TestFak(3, 3), false}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dir.Add({std::string(5000, 'x'), TestFak(4, 4), false}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DirectoryTest, SerializeRoundTrip) {
  Directory dir;
  ASSERT_TRUE(dir.Add({"alpha", TestFak(111, 3), false}).ok());
  ASSERT_TRUE(dir.Add({"beta/γ utf8 name", TestFak(222, 5), true}).ok());
  ASSERT_TRUE(dir.Add({"empty-keys-no", TestFak(333, 7), false}).ok());

  const auto back = Directory::Deserialize(dir.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->entries(), dir.entries());
}

TEST(DirectoryTest, EmptyDirectoryRoundTrips) {
  Directory dir;
  const auto back = Directory::Deserialize(dir.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(DirectoryTest, DeserializeRejectsCorruption) {
  Directory dir;
  ASSERT_TRUE(dir.Add({"x", TestFak(1, 1), false}).ok());
  Bytes good = dir.Serialize();

  EXPECT_FALSE(Directory::Deserialize({}).ok());

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(Directory::Deserialize(bad_magic).ok());

  Bytes truncated(good.begin(), good.end() - 3);
  EXPECT_FALSE(Directory::Deserialize(truncated).ok());

  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(Directory::Deserialize(trailing).ok());

  Bytes bad_keylen = good;
  // Key length byte sits after magic(8) + namelen(2) + name(1) + loc(8).
  bad_keylen[8 + 2 + 1 + 8] = 17;
  EXPECT_FALSE(Directory::Deserialize(bad_keylen).ok());
}

// ---- end-to-end over a hidden file ----------------------------------------

class DirectoryOnAgentTest : public ::testing::Test {
 protected:
  DirectoryOnAgentTest()
      : dev_(2048, 4096), core_(&dev_, StegFsOptions{61, true}),
        agent_(&core_) {
    EXPECT_TRUE(core_.Format().ok());
    EXPECT_TRUE(agent_.CreateDummyFile("alice", 300).ok());
  }
  storage::MemBlockDevice dev_;
  StegFsCore core_;
  agent::VolatileAgent agent_;
};

TEST_F(DirectoryOnAgentTest, HierarchicalVaultFromOneRootFak) {
  // Build: root/ { notes.txt, secrets/ { plan.txt } }
  auto notes = agent_.CreateHiddenFile("alice");
  auto plan = agent_.CreateHiddenFile("alice");
  auto subdir_file = agent_.CreateHiddenFile("alice");
  auto root_file = agent_.CreateHiddenFile("alice");
  ASSERT_TRUE(notes.ok() && plan.ok() && subdir_file.ok() && root_file.ok());

  const Bytes notes_data = {'n', 'o', 't', 'e', 's'};
  const Bytes plan_data = {'p', 'l', 'a', 'n'};
  ASSERT_TRUE(agent_.Write(*notes, 0, notes_data).ok());
  ASSERT_TRUE(agent_.Write(*plan, 0, plan_data).ok());

  Directory secrets;
  ASSERT_TRUE(secrets.Add({"plan.txt", *agent_.GetFak(*plan), false}).ok());
  ASSERT_TRUE(StoreDirectory(agent_, *subdir_file, secrets).ok());

  Directory root;
  ASSERT_TRUE(root.Add({"notes.txt", *agent_.GetFak(*notes), false}).ok());
  ASSERT_TRUE(
      root.Add({"secrets", *agent_.GetFak(*subdir_file), true}).ok());
  ASSERT_TRUE(StoreDirectory(agent_, *root_file, root).ok());
  const auto root_fak = agent_.GetFak(*root_file);
  ASSERT_TRUE(root_fak.ok());
  for (auto id : {*notes, *plan, *subdir_file, *root_file}) {
    ASSERT_TRUE(agent_.Flush(id).ok());
  }
  ASSERT_TRUE(agent_.Logout("alice").ok());

  // A later session reconstructs the whole tree from the root FAK alone.
  auto root_id = agent_.DiscloseHiddenFile("alice", *root_fak);
  ASSERT_TRUE(root_id.ok());
  auto loaded_root = LoadDirectory(agent_, *root_id);
  ASSERT_TRUE(loaded_root.ok());
  ASSERT_EQ(loaded_root->size(), 2u);

  auto sub_entry = loaded_root->Lookup("secrets");
  ASSERT_TRUE(sub_entry.ok());
  ASSERT_TRUE(sub_entry->is_directory);
  auto sub_id = agent_.DiscloseHiddenFile("alice", sub_entry->fak);
  ASSERT_TRUE(sub_id.ok());
  auto loaded_sub = LoadDirectory(agent_, *sub_id);
  ASSERT_TRUE(loaded_sub.ok());

  auto plan_entry = loaded_sub->Lookup("plan.txt");
  ASSERT_TRUE(plan_entry.ok());
  auto plan_id = agent_.DiscloseHiddenFile("alice", plan_entry->fak);
  ASSERT_TRUE(plan_id.ok());
  EXPECT_EQ(*agent_.Read(*plan_id, 0, plan_data.size()), plan_data);
}

TEST_F(DirectoryOnAgentTest, RewriteShrinksCleanly) {
  auto dir_file = agent_.CreateHiddenFile("alice");
  ASSERT_TRUE(dir_file.ok());

  Directory big;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(big.Add({"entry-" + std::to_string(i),
                         FileAccessKey{uint64_t(i), Bytes(16, 1), Bytes(16, 2)},
                         false})
                    .ok());
  }
  ASSERT_TRUE(StoreDirectory(agent_, *dir_file, big).ok());

  Directory small;
  ASSERT_TRUE(small.Add({"only", FileAccessKey{1, Bytes(16, 1), Bytes(16, 2)},
                         false})
                  .ok());
  ASSERT_TRUE(StoreDirectory(agent_, *dir_file, small).ok());

  auto back = LoadDirectory(agent_, *dir_file);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 1u);
  EXPECT_TRUE(back->Contains("only"));
}

}  // namespace
}  // namespace steghide::stegfs
