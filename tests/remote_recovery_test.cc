// Remote-matrix crash/recovery suite: a VolumeSet with one remote
// (loopback block-RPC) replica per shard running in quorum mode. Kills
// the server mid-write-burst, partitions the link mid-write-quorum via
// a scripted transport fault, crashes it again mid-repair — and pins
// that quorum reads never serve stale data, degraded service never
// fails a request, and the mirror re-converges byte-identically after
// reconnect. Ends with the RPC-stream distinguisher: per-replica block
// traces AND per-replica delivered-frame logs must be identical across
// content-differing twin runs with the same request pattern and fault
// schedule.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agent/oblivious_agent.h"
#include "storage/fault_device.h"
#include "storage/remote/transport.h"
#include "storage/volume_set.h"
#include "testing/golden.h"
#include "util/bytes.h"

namespace steghide::storage {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;

/// K=2 shards, R=2 replicas, replica 1 of every shard behind a loopback
/// RPC endpoint; quorum mode with W=1 so a lost remote degrades writes
/// instead of failing them.
VolumeSet::Options RemoteQuorumOptions(int quarantine_after,
                                       uint64_t total_blocks = 64) {
  VolumeSet::Options options;
  options.shards = 2;
  options.replicas = 2;
  options.total_blocks = total_blocks;
  options.block_size = 512;
  options.fault_plan = [](size_t, size_t) { return FaultPlan{}; };
  options.replication.quorum = true;
  options.replication.write_quorum = 1;
  options.replication.read_quorum = 1;
  options.replication.quarantine_after = quarantine_after;
  options.remote = [](size_t, size_t r) { return r == 1; };
  options.remote_options.rpc_deadline_ms = 5000.0;
  options.remote_options.retry.max_attempts = 2;
  return options;
}

void ExpectShardMirrorsIdentical(VolumeSet& volumes, size_t k) {
  auto& local = volumes.mem(k, 0);
  auto& remote_backing = volumes.mem(k, 1);
  for (uint64_t b = 0; b < local.num_blocks(); ++b) {
    Bytes a(local.block_size()), c(local.block_size());
    ASSERT_TRUE(local.ReadBlock(b, a.data()).ok());
    ASSERT_TRUE(remote_backing.ReadBlock(b, c.data()).ok());
    ASSERT_EQ(a, c) << "shard " << k << " local block " << b;
  }
}

TEST(RemoteQuorumTest, ScriptedPartitionMidWriteQuorumThenReadRepair) {
  // The transport schedule black-holes shard 0's remote link on its
  // 21st client frame — mid way through the fill burst, between the
  // local ack and the remote ack of one quorum write.
  VolumeSet::Options options = RemoteQuorumOptions(/*quarantine_after=*/1000);
  options.transport_fault_plan = [](size_t k, size_t) {
    FaultPlan plan;
    if (k == 0) {
      FaultSpec spec;
      spec.kind = FaultSpec::Kind::kPartition;
      spec.start_after = 20;
      spec.max_fires = 1;  // one partition event; the latch does the rest
      plan.faults.push_back(spec);
    }
    return plan;
  };
  VolumeSet volumes(options);

  // Every write of the burst succeeds: before the partition via both
  // acks, after it via the local W=1 quorum.
  ASSERT_TRUE(FillGolden(volumes.device(), 13).ok());
  ASSERT_TRUE(volumes.transport_fault(0, 1)->partitioned());
  EXPECT_EQ(volumes.replicated(0)->replica_state(1), ReplicaState::kLagging);
  EXPECT_GT(volumes.replicated(0)->stale_blocks(1), 0u);
  EXPECT_EQ(volumes.replicated(0)->stats().write_quorum_failures, 0u);

  // Degraded reads: every block comes back fresh — the lagging remote
  // only ever serves blocks it holds at the latest stamp.
  Bytes out(512);
  for (uint64_t g = 0; g < 64; ++g) {
    ASSERT_TRUE(volumes.device().ReadBlock(g, out.data()).ok());
    ASSERT_EQ(out, GoldenBlock(13, g, 512)) << "block " << g;
  }
  EXPECT_EQ(volumes.replicated(0)->stats().quorum_stale_reads, 0u);

  // Heal the link and read everything once more: read-repair pushes
  // each stale block back to the remote, which re-converges and is
  // promoted without ever needing a full sweep.
  volumes.HealReplica(0, 1);
  for (uint64_t g = 0; g < 64; ++g) {
    ASSERT_TRUE(volumes.device().ReadBlock(g, out.data()).ok());
    ASSERT_EQ(out, GoldenBlock(13, g, 512)) << "block " << g;
  }
  EXPECT_EQ(volumes.replicated(0)->stale_blocks(1), 0u);
  EXPECT_EQ(volumes.replicated(0)->replica_state(1), ReplicaState::kHealthy);
  EXPECT_GT(volumes.replicated(0)->stats().read_repairs, 0u);
  EXPECT_EQ(volumes.replicated(0)->stats().quorum_stale_reads, 0u);
  ExpectShardMirrorsIdentical(volumes, 0);
  ExpectShardMirrorsIdentical(volumes, 1);
}

TEST(RemoteQuorumTest, ServerCrashMidBurstDegradesThenRepairs) {
  VolumeSet::Options options = RemoteQuorumOptions(/*quarantine_after=*/2);
  VolumeSet volumes(options);
  ASSERT_TRUE(FillGolden(volumes.device(), 40).ok());

  // The remote host behind shard 0's replica 1 dies between two quorum
  // writes of an update burst. Every subsequent write still succeeds on
  // the local replica; after two consecutive remote misses the replica
  // is benched so serving stops paying its fail-fast RPC errors.
  volumes.CrashReplica(0, 1);
  for (uint64_t g = 0; g < 64; g += 2) {  // shard 0's blocks
    const Bytes image = GoldenBlock(41, g, 512);
    ASSERT_TRUE(volumes.device().WriteBlock(g, image.data()).ok())
        << "block " << g;
  }
  EXPECT_EQ(volumes.replicated(0)->replica_state(1),
            ReplicaState::kQuarantined);

  // No stale quorum reads while degraded.
  Bytes out(512);
  for (uint64_t g = 0; g < 64; ++g) {
    ASSERT_TRUE(volumes.device().ReadBlock(g, out.data()).ok());
    const uint64_t salt = g % 2 == 0 ? 41 : 40;
    ASSERT_EQ(out, GoldenBlock(salt, g, 512)) << "block " << g;
  }
  EXPECT_EQ(volumes.replicated(0)->stats().quorum_stale_reads, 0u);

  // The host comes back with its durable volume intact; revive runs the
  // restart + repair sweep, with a live write racing the sweep.
  ASSERT_TRUE(volumes.ReviveAndRepair(0, 1).ok());
  const Bytes live = GoldenBlock(42, 0, 512);
  ASSERT_TRUE(volumes.device().WriteBlock(0, live.data()).ok());
  for (;;) {
    auto pending = volumes.PumpRepair(8);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    if (!*pending) break;
  }
  EXPECT_EQ(volumes.replicated(0)->replica_state(1), ReplicaState::kHealthy);
  EXPECT_EQ(volumes.replicated(0)->stale_blocks(1), 0u);
  ExpectShardMirrorsIdentical(volumes, 0);
  ASSERT_TRUE(volumes.device().ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, live);
  EXPECT_EQ(volumes.replicated(0)->stats().quorum_stale_reads, 0u);
}

TEST(RemoteQuorumTest, ServerCrashMidRepairRestartsAndConverges) {
  VolumeSet::Options options = RemoteQuorumOptions(/*quarantine_after=*/2);
  VolumeSet volumes(options);
  ASSERT_TRUE(FillGolden(volumes.device(), 50).ok());

  // Stale the remote, then start repairing it.
  volumes.CrashReplica(0, 1);
  for (uint64_t g = 0; g < 64; g += 2) {
    const Bytes image = GoldenBlock(51, g, 512);
    ASSERT_TRUE(volumes.device().WriteBlock(g, image.data()).ok());
  }
  ASSERT_EQ(volumes.replicated(0)->replica_state(1),
            ReplicaState::kQuarantined);
  ASSERT_TRUE(volumes.ReviveAndRepair(0, 1).ok());

  // The host dies again mid-sweep. The next repair write fails and the
  // replica drops back to quarantined — degraded serving continues.
  auto pending = volumes.PumpRepair(4);
  ASSERT_TRUE(pending.ok());
  ASSERT_TRUE(*pending);
  volumes.CrashReplica(0, 1);
  for (;;) {
    pending = volumes.PumpRepair(4);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    if (!*pending) break;
  }
  EXPECT_EQ(volumes.replicated(0)->replica_state(1),
            ReplicaState::kQuarantined);
  Bytes out(512);
  for (uint64_t g = 0; g < 64; ++g) {
    ASSERT_TRUE(volumes.device().ReadBlock(g, out.data()).ok());
  }
  EXPECT_EQ(volumes.replicated(0)->stats().quorum_stale_reads, 0u);

  // Second restart completes the sweep; the mirror is byte-identical.
  ASSERT_TRUE(volumes.ReviveAndRepair(0, 1).ok());
  for (;;) {
    pending = volumes.PumpRepair(8);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    if (!*pending) break;
  }
  EXPECT_EQ(volumes.replicated(0)->replica_state(1), ReplicaState::kHealthy);
  ExpectShardMirrorsIdentical(volumes, 0);
  EXPECT_EQ(volumes.replicated(0)->stats().quorum_stale_reads, 0u);
}

TEST(RemoteQuorumTest, RpcStreamAndReplicaTracesAreContentIndependent) {
  // Twin volume sets, identical request pattern and fault schedule
  // (partition mid-burst, heal, crash, restart + repair), different
  // block contents. Every replica's block trace and every remote
  // replica's delivered-frame log must match: RPC frame types, sizes,
  // and order are functions of the request pattern and fault schedule,
  // never of the data.
  auto run = [](uint64_t salt, std::vector<remote::FrameRecord>* log0,
                std::vector<remote::FrameRecord>* log1,
                std::vector<IoTrace>* traces_out) {
    VolumeSet::Options options =
        RemoteQuorumOptions(/*quarantine_after=*/1000, /*total_blocks=*/32);
    options.traced = true;
    auto volumes = std::make_unique<VolumeSet>(options);
    volumes->transport_fault(0, 1)->set_frame_log(log0);
    volumes->transport_fault(1, 1)->set_frame_log(log1);

    Bytes out(512);
    for (uint64_t g = 0; g < 32; ++g) {
      const Bytes image = GoldenBlock(salt, g, 512);
      ASSERT_TRUE(volumes->device().WriteBlock(g, image.data()).ok());
    }
    volumes->PartitionReplica(0, 1);
    for (uint64_t g = 0; g < 32; g += 4) {
      const Bytes image = GoldenBlock(salt + 1, g, 512);
      ASSERT_TRUE(volumes->device().WriteBlock(g, image.data()).ok());
      ASSERT_TRUE(volumes->device().ReadBlock(g + 1, out.data()).ok());
    }
    volumes->HealReplica(0, 1);
    for (uint64_t g = 0; g < 32; ++g) {
      ASSERT_TRUE(volumes->device().ReadBlock(g, out.data()).ok());
    }
    volumes->CrashReplica(1, 1);
    for (uint64_t g = 1; g < 32; g += 4) {  // shard 1's blocks
      const Bytes image = GoldenBlock(salt + 2, g, 512);
      ASSERT_TRUE(volumes->device().WriteBlock(g, image.data()).ok());
    }
    ASSERT_TRUE(volumes->ReviveAndRepair(1, 1).ok());
    for (;;) {
      auto pending = volumes->PumpRepair(8);
      ASSERT_TRUE(pending.ok()) << pending.status().ToString();
      if (!*pending) break;
    }
    EXPECT_EQ(volumes->replicated(0)->stats().quorum_stale_reads, 0u);
    EXPECT_EQ(volumes->replicated(1)->stats().quorum_stale_reads, 0u);

    // Snapshot the per-replica block traces before teardown.
    for (size_t k = 0; k < 2; ++k) {
      for (size_t r = 0; r < 2; ++r) {
        traces_out->push_back(volumes->trace(k, r)->trace());
      }
    }
    // The frame logs are appended to by the endpoint threads; destroy
    // the volume set (joining them) before the caller compares.
    volumes.reset();
  };

  std::vector<remote::FrameRecord> a0, a1, b0, b1;
  std::vector<IoTrace> traces_a, traces_b;
  run(60, &a0, &a1, &traces_a);
  run(90, &b0, &b1, &traces_b);
  ASSERT_EQ(traces_a.size(), traces_b.size());
  for (size_t i = 0; i < traces_a.size(); ++i) {
    EXPECT_EQ(traces_a[i], traces_b[i]) << "replica slot " << i;
  }
  ASSERT_FALSE(a0.empty());
  ASSERT_FALSE(a1.empty());
  EXPECT_EQ(a0, b0);
  EXPECT_EQ(a1, b1);
}

}  // namespace
}  // namespace steghide::storage

// ---- Full agent stack over a remote quorum mirror ------------------------

namespace steghide::agent {
namespace {

using storage::FaultPlan;
using storage::ReplicaState;
using storage::VolumeSet;

oblivious::ObliviousStoreOptions RemoteStoreOptions() {
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 128;  // levels 16, 32, 64, 128
  opts.partition_base = 0;
  opts.scratch_base = 2 * 128 - 2 * 8;  // 240
  opts.drbg_seed = 43;
  opts.deamortize_reorders = true;
  opts.shadow_base = 240 + 128;
  opts.reorder_step_blocks = 1;
  return opts;
}

/// The ReplicatedSystem of replication_test.cc with replica 1 of every
/// shard behind the loopback RPC transport, in quorum mode.
struct RemoteReplicatedSystem {
  explicit RemoteReplicatedSystem(uint64_t seed)
      : steg_mem(4096, 4096),
        core(&steg_mem, stegfs::StegFsOptions{seed, true}) {
    VolumeSet::Options options;
    options.shards = 2;
    options.replicas = 2;
    options.total_blocks = 768;
    options.block_size = 4096;
    options.fault_plan = [](size_t, size_t) { return FaultPlan{}; };
    options.replication.quorum = true;
    options.replication.write_quorum = 1;
    options.replication.read_quorum = 1;
    options.remote = [](size_t, size_t r) { return r == 1; };
    options.remote_options.rpc_deadline_ms = 5000.0;
    options.remote_options.retry.max_attempts = 2;
    volumes = std::make_unique<VolumeSet>(options);
    EXPECT_TRUE(core.Format().ok());
    auto created = ObliviousAgent::Create(&core, &volumes->device(),
                                          RemoteStoreOptions());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    agent = std::move(created).value();
    EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  }

  Bytes FileBlock(uint64_t salt, size_t file_index, size_t block) {
    return Bytes(core.payload_size(),
                 static_cast<uint8_t>(salt * 101 + file_index * 37 + block));
  }

  std::vector<ObliviousAgent::FileId> Populate(uint64_t salt, size_t files,
                                               size_t blocks) {
    std::vector<ObliviousAgent::FileId> ids;
    const size_t payload = core.payload_size();
    for (size_t f = 0; f < files; ++f) {
      auto id = agent->CreateHiddenFile("u");
      EXPECT_TRUE(id.ok());
      Bytes data(blocks * payload);
      for (size_t b = 0; b < blocks; ++b) {
        const Bytes block = FileBlock(salt, f, b);
        std::copy(block.begin(), block.end(), data.begin() + b * payload);
      }
      EXPECT_TRUE(agent->Write(*id, 0, data).ok());
      ids.push_back(*id);
    }
    return ids;
  }

  void BuildReorderBacklog() {
    auto& store = agent->store();
    Bytes payloads(16 * store.payload_size(), 0x5a);
    std::vector<oblivious::RecordId> rids(16);
    for (size_t i = 0; i < rids.size(); ++i) rids[i] = (1u << 20) + i;
    for (int round = 0; round < 32 && !store.reorder_pending(); ++round) {
      ASSERT_TRUE(store.MultiInsert(rids, payloads.data()).ok());
    }
    ASSERT_TRUE(store.reorder_pending()) << "no chain ever went pending";
  }

  void DrainReorders() {
    while (agent->store().reorder_pending()) {
      bool more = false;
      ASSERT_TRUE(agent->store().StepReorder(1 << 20, &more).ok());
    }
  }

  void RepairReplica(size_t k, size_t r) {
    ASSERT_TRUE(volumes->ReviveAndRepair(k, r).ok());
    for (;;) {
      auto pending = volumes->PumpRepair(32);
      ASSERT_TRUE(pending.ok()) << pending.status().ToString();
      if (!*pending) break;
    }
  }

  storage::MemBlockDevice steg_mem;
  std::unique_ptr<VolumeSet> volumes;
  stegfs::StegFsCore core;
  std::unique_ptr<ObliviousAgent> agent;
};

TEST(RemoteCrashConsistencyTest, RemoteReplicaDiesMidCascade) {
  RemoteReplicatedSystem sys(7001);
  constexpr size_t kFiles = 6, kBlocks = 4;
  const size_t payload = sys.core.payload_size();
  const auto ids = sys.Populate(/*salt=*/0, kFiles, kBlocks);

  // Update every file's first block, park a flush cascade mid-flight,
  // then kill the remote host behind shard 0's replica 1 under it.
  for (size_t f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(sys.agent
                    ->Write(ids[f], 0,
                            Bytes(payload, static_cast<uint8_t>(0xc0 + f)))
                    .ok());
  }
  sys.BuildReorderBacklog();
  ASSERT_TRUE(sys.agent->store().reorder_pending());
  sys.volumes->CrashReplica(0, 1);

  // Zero failed requests while degraded: quorum writes land on the
  // local replica, quorum reads never serve a stale stamp.
  for (size_t f = 0; f < kFiles; ++f) {
    auto back = sys.agent->Read(ids[f], 0, kBlocks * payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
  }
  ASSERT_TRUE(sys.agent
                  ->Write(ids[0], payload, Bytes(payload, 0xee))
                  .ok());
  sys.DrainReorders();
  EXPECT_NE(sys.volumes->replicated(0)->replica_state(1),
            ReplicaState::kHealthy);
  EXPECT_EQ(sys.volumes->replicated(0)->stats().quorum_stale_reads, 0u);

  // The host restarts with its volume intact; repair re-converges it.
  sys.RepairReplica(0, 1);
  EXPECT_EQ(sys.volumes->replicated(0)->replica_state(1),
            ReplicaState::kHealthy);

  for (size_t f = 0; f < kFiles; ++f) {
    auto back = sys.agent->Read(ids[f], 0, kBlocks * payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    for (size_t b = 0; b < kBlocks; ++b) {
      Bytes expected;
      if (b == 0) {
        expected = Bytes(payload, static_cast<uint8_t>(0xc0 + f));
      } else if (b == 1 && f == 0) {
        expected = Bytes(payload, 0xee);
      } else {
        expected = sys.FileBlock(0, f, b);
      }
      EXPECT_EQ(Bytes(back->begin() + b * payload,
                      back->begin() + (b + 1) * payload),
                expected)
          << "file " << f << " block " << b;
    }
  }

  // The repaired remote mirror is byte-identical to its local twin.
  auto& mem0 = sys.volumes->mem(0, 0);
  auto& mem1 = sys.volumes->mem(0, 1);
  for (uint64_t local = 0; local < mem0.num_blocks(); ++local) {
    Bytes a(4096), b(4096);
    ASSERT_TRUE(mem0.ReadBlock(local, a.data()).ok());
    ASSERT_TRUE(mem1.ReadBlock(local, b.data()).ok());
    ASSERT_EQ(a, b) << "shard 0 local block " << local;
  }
  EXPECT_EQ(sys.volumes->replicated(0)->stats().quorum_stale_reads, 0u);
}

}  // namespace
}  // namespace steghide::agent
