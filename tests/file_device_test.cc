// FileBlockDevice hardening: persistence-specific behaviour (flush
// ordering, close/reopen round-trips, geometry validation) that the
// MemBlockDevice-backed suites cannot cover, plus integration with the
// layers that will sit on a file-backed volume in a deployment
// (BlockCache write-back, StegFsCore header trees).

#include <gtest/gtest.h>

#include <utility>

#include "stegfs/stegfs_core.h"
#include "storage/async/block_cache.h"
#include "storage/fault_device.h"
#include "storage/file_block_device.h"
#include "storage/retry_device.h"
#include "testing/golden.h"
#include "testing/temp_dir.h"

namespace steghide::storage {
namespace {

using steghide::testing::DeviceMatchesGolden;
using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;

class FileDeviceTest : public steghide::testing::TempDirTest {
 protected:
  void SetUp() override { path_ = TempFile("vol.img"); }
  std::string path_;
};

TEST_F(FileDeviceTest, FlushMakesWritesVisibleToIndependentHandle) {
  auto writer = FileBlockDevice::Create(path_, 8, 512);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const Bytes image = GoldenBlock(1, 5, 512);
  ASSERT_TRUE(writer->WriteBlock(5, image.data()).ok());
  ASSERT_TRUE(writer->Flush().ok());

  // A second descriptor opened while the writer is still live must see
  // the flushed write — pwrite+fsync ordering, not close-time luck.
  auto reader = FileBlockDevice::Open(path_, 512);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(steghide::testing::BlockEquals(*reader, 5, image));
}

TEST_F(FileDeviceTest, CloseReopenRoundTripsEveryBlock) {
  {
    auto dev = FileBlockDevice::Create(path_, 32, 512);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(FillGolden(*dev, /*seed=*/14).ok());
    ASSERT_TRUE(dev->Flush().ok());
  }
  auto dev = FileBlockDevice::Open(path_, 512);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(dev->num_blocks(), 32u);
  EXPECT_TRUE(DeviceMatchesGolden(*dev, 14));
}

TEST_F(FileDeviceTest, ReopenWithCoarserBlockSizeSeesSameBytes) {
  {
    auto dev = FileBlockDevice::Create(path_, 16, 512);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(FillGolden(*dev, 15).ok());
    ASSERT_TRUE(dev->Flush().ok());
  }
  auto dev = FileBlockDevice::Open(path_, 1024);
  ASSERT_TRUE(dev.ok());
  ASSERT_EQ(dev->num_blocks(), 8u);
  // Each 1024-byte block is the concatenation of two 512-byte blocks.
  Bytes coarse(1024);
  ASSERT_TRUE(dev->ReadBlock(3, coarse.data()).ok());
  Bytes expected = GoldenBlock(15, 6, 512);
  const Bytes second = GoldenBlock(15, 7, 512);
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(coarse, expected);
}

TEST_F(FileDeviceTest, ZeroBlockSizeRejected) {
  EXPECT_EQ(FileBlockDevice::Create(path_, 8, 0).status().code(),
            StatusCode::kInvalidArgument);
  {
    auto dev = FileBlockDevice::Create(path_, 8, 512);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(dev->Flush().ok());
  }
  EXPECT_EQ(FileBlockDevice::Open(path_, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FileDeviceTest, OverflowingGeometryRejected) {
  const auto dev = FileBlockDevice::Create(path_, UINT64_MAX / 2, 4096);
  EXPECT_EQ(dev.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FileDeviceTest, MovedFromDeviceFlushIsNoop) {
  auto created = FileBlockDevice::Create(path_, 4, 512);
  ASSERT_TRUE(created.ok());
  FileBlockDevice moved = std::move(created).value();
  EXPECT_TRUE(moved.Flush().ok());
  // `created`'s storage has been pilfered; flushing the husk must not
  // surface an EBADF from the closed descriptor.
  EXPECT_TRUE(created->Flush().ok());
}

TEST_F(FileDeviceTest, VectoredReadMatchesSingleReads) {
  auto dev = FileBlockDevice::Create(path_, 16, 512);
  ASSERT_TRUE(dev.ok());
  ASSERT_TRUE(FillGolden(*dev, 16).ok());
  const std::vector<uint64_t> ids = {12, 0, 7, 7};
  Bytes out;
  ASSERT_TRUE(dev->ReadBlocks(ids, out).ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(Bytes(out.begin() + i * 512, out.begin() + (i + 1) * 512),
              GoldenBlock(16, ids[i], 512))
        << "position " << i;
  }
}

TEST_F(FileDeviceTest, RetryOverFaultOverFileRecoversTransientErrors) {
  // The deployment error path end to end: a file-backed volume with a
  // flaky controller (every 3rd op fails once) behind the retry layer.
  // Every logical op must succeed, and the persisted image must match a
  // fault-free run's.
  auto file = FileBlockDevice::Create(path_, 16, 512);
  ASSERT_TRUE(file.ok());
  FaultPlan plan;
  plan.seed = 21;
  FaultSpec flaky;
  flaky.kind = FaultSpec::Kind::kTransientError;
  flaky.every_nth = 3;
  plan.faults.push_back(flaky);
  FaultInjectionBlockDevice fault(&*file, plan);
  RetryingBlockDevice retry(&fault);

  ASSERT_TRUE(FillGolden(retry, /*seed=*/33).ok());
  EXPECT_TRUE(DeviceMatchesGolden(retry, 33));
  ASSERT_TRUE(retry.Flush().ok());

  const RetryStats rs = retry.stats();
  EXPECT_GT(rs.retries, 0u);
  EXPECT_EQ(rs.exhausted, 0u);
  EXPECT_GT(fault.stats().injected_errors, 0u);

  // The bytes that reached the platter are the golden image, not a torn
  // interleaving of failed attempts.
  auto reopened = FileBlockDevice::Open(path_, 512);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(DeviceMatchesGolden(*reopened, 33));
}

TEST_F(FileDeviceTest, ExhaustedRetryBudgetSurfacesIoError) {
  auto file = FileBlockDevice::Create(path_, 4, 512);
  ASSERT_TRUE(file.ok());
  FaultPlan plan;
  FaultSpec dead_sector;
  dead_sector.kind = FaultSpec::Kind::kStickyError;
  dead_sector.first_block = 2;
  dead_sector.last_block = 2;
  plan.faults.push_back(dead_sector);
  FaultInjectionBlockDevice fault(&*file, plan);
  RetryingBlockDevice retry(&fault, RetryPolicy{.max_attempts = 4});

  const Bytes image = GoldenBlock(3, 2, 512);
  const Status status = retry.WriteBlock(2, image.data());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  const RetryStats rs = retry.stats();
  EXPECT_EQ(rs.retries, 3u);
  EXPECT_EQ(rs.exhausted, 1u);
  EXPECT_EQ(rs.recovered, 0u);
  // Blocks outside the bad region keep working.
  EXPECT_TRUE(retry.WriteBlock(1, image.data()).ok());
}

TEST_F(FileDeviceTest, WriteBackCachePersistsAcrossReopen) {
  {
    auto dev = FileBlockDevice::Create(path_, 64, 512);
    ASSERT_TRUE(dev.ok());
    BlockCacheOptions opts;
    opts.capacity_blocks = 16;
    opts.write_back = true;
    BlockCache cache(&*dev, opts);
    for (uint64_t b = 0; b < 64; ++b) {
      const Bytes image = GoldenBlock(17, b, 512);
      ASSERT_TRUE(cache.WriteBlock(b, image.data()).ok());
    }
    // Evictions already pushed most blocks; Flush drains the rest and
    // fsyncs the file underneath.
    ASSERT_TRUE(cache.Flush().ok());
  }
  auto dev = FileBlockDevice::Open(path_, 512);
  ASSERT_TRUE(dev.ok());
  EXPECT_TRUE(DeviceMatchesGolden(*dev, 17));
}

TEST_F(FileDeviceTest, StegFsHeaderTreeSurvivesReopen) {
  stegfs::FileAccessKey fak;
  Bytes payload_written;
  {
    auto dev = FileBlockDevice::Create(path_, 128, 4096);
    ASSERT_TRUE(dev.ok());
    stegfs::StegFsCore core(&*dev, stegfs::StegFsOptions{51, true});
    ASSERT_TRUE(core.Format().ok());

    stegfs::HiddenFile file;
    file.fak = stegfs::FileAccessKey::Random(core.drbg(), core.num_blocks());
    fak = file.fak;
    payload_written = Bytes(core.payload_size(), 0x42);
    for (uint64_t i = 0; i < 3; ++i) {
      const uint64_t physical = 10 + i;
      ASSERT_TRUE(
          core.WriteDataBlockAt(file, physical, payload_written.data()).ok());
      file.block_ptrs.push_back(physical);
    }
    file.file_size = 3 * core.payload_size();
    ASSERT_TRUE(core.StoreFile(file).ok());
    ASSERT_TRUE(dev->Flush().ok());
  }

  auto dev = FileBlockDevice::Open(path_, 4096);
  ASSERT_TRUE(dev.ok());
  stegfs::StegFsCore core(&*dev, stegfs::StegFsOptions{52, true});
  auto loaded = core.LoadFile(fak);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_data_blocks(), 3u);
  EXPECT_EQ(loaded->file_size, 3 * core.payload_size());
  Bytes out(core.payload_size());
  ASSERT_TRUE(core.ReadFileBlock(*loaded, 1, out.data()).ok());
  EXPECT_EQ(out, payload_written);
}

}  // namespace
}  // namespace steghide::storage
