#include <gtest/gtest.h>

#include "agent/volatile_agent.h"
#include "storage/mem_block_device.h"

namespace steghide::agent {
namespace {

using stegfs::FileAccessKey;
using stegfs::StegFsOptions;

class VolatileAgentTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBlocks = 4096;

  VolatileAgentTest()
      : dev_(kBlocks, 4096), core_(&dev_, StegFsOptions{21, true}) {
    EXPECT_TRUE(core_.Format().ok());
    agent_ = std::make_unique<VolatileAgent>(&core_);
  }

  /// Standard session: the user provisions one dummy file alongside his
  /// data.
  VolatileAgent::FileId ProvisionDummy(const std::string& user,
                                       uint64_t blocks = 256) {
    auto id = agent_->CreateDummyFile(user, blocks);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  Bytes Pattern(size_t n, uint8_t seed) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seed ^ (i * 13));
    return out;
  }

  storage::MemBlockDevice dev_;
  stegfs::StegFsCore core_;
  std::unique_ptr<VolatileAgent> agent_;
};

TEST_F(VolatileAgentTest, CreateWriteReadRoundTrip) {
  ProvisionDummy("alice");
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(30000, 1);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  const auto back = agent_->Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(VolatileAgentTest, WritesRequireDummyBlocks) {
  // Without any dummy file the selection loop has no relocation targets.
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(agent_->Write(*id, 0, Bytes(100, 1)).ok());
}

TEST_F(VolatileAgentTest, CannotWriteToDummyFile) {
  const auto dummy = ProvisionDummy("alice");
  EXPECT_EQ(agent_->Write(dummy, 0, Bytes(10, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(VolatileAgentTest, DummyPoolSizeIsPreservedByUpdates) {
  ProvisionDummy("alice", 300);
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(payload * 20, 2)).ok());

  const uint64_t dummies_after_population = agent_->dummy_block_count();
  // In-place-range updates: relocations swap roles, so the pool size must
  // not drift.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        agent_->Write(*id, (i % 20) * payload, Bytes(payload, 3)).ok());
  }
  EXPECT_EQ(agent_->dummy_block_count(), dummies_after_population);
}

TEST_F(VolatileAgentTest, PersistsAcrossLogoutAndRestart) {
  ProvisionDummy("alice");
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(50000, 7);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  const auto fak = agent_->GetFak(*id);
  ASSERT_TRUE(fak.ok());
  ASSERT_TRUE(agent_->Logout("alice").ok());

  // Simulate an agent restart: a fresh volatile agent knows nothing until
  // the user disclosed his FAK again.
  agent_ = std::make_unique<VolatileAgent>(&core_);
  EXPECT_EQ(agent_->domain_size(), 0u);
  auto reopened = agent_->DiscloseHiddenFile("alice", *fak);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto back = agent_->Read(*reopened, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(VolatileAgentTest, DummyFileSurvivesLogoutWithConsistentHeader) {
  const auto dummy_id = ProvisionDummy("alice", 64);
  const auto dummy_fak = agent_->GetFak(dummy_id);
  ASSERT_TRUE(dummy_fak.ok());
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  // These updates mutate the dummy file's membership via swaps.
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(8 * core_.payload_size(), 1)).ok());
  ASSERT_TRUE(agent_->Logout("alice").ok());

  // Re-disclose: the on-disk dummy header must reflect all swaps. The
  // hidden file's 8 appended blocks were claimed out of the dummy pool, so
  // 56 dummies remain.
  auto re = agent_->DiscloseDummyFile("alice", *dummy_fak);
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_EQ(agent_->dummy_block_count(), 56u);
}

TEST_F(VolatileAgentTest, PlausibleDeniabilityWithDecoyContentKey) {
  ProvisionDummy("alice");
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const Bytes secret = Pattern(4000, 9);
  ASSERT_TRUE(agent_->Write(*id, 0, secret).ok());
  ASSERT_TRUE(agent_->Flush(*id).ok());
  const auto fak = agent_->GetFak(*id);
  ASSERT_TRUE(fak.ok());
  ASSERT_TRUE(agent_->Logout("alice").ok());

  // Coerced, alice hands over the header components with a decoy content
  // key and claims "just a dummy file". The adversary can open it as a
  // dummy file without any error...
  const FileAccessKey decoy = fak->WithDecoyContentKey(core_.drbg());
  auto as_dummy = agent_->DiscloseDummyFile("adversary", decoy);
  ASSERT_TRUE(as_dummy.ok());
  // ...and what he reads is indistinguishable garbage, not the secret.
  const auto read = agent_->Read(*as_dummy, 0, secret.size());
  // Dummy files cannot be Read through the user API; verify via core.
  Bytes out(core_.payload_size());
  stegfs::HiddenFile probe;
  {
    auto loaded = core_.LoadFile(decoy);
    ASSERT_TRUE(loaded.ok());
    probe = std::move(loaded).value();
  }
  ASSERT_TRUE(core_.ReadFileBlock(probe, 0, out.data()).ok());
  EXPECT_NE(Bytes(out.begin(), out.begin() + secret.size()), secret);
  (void)read;
}

TEST_F(VolatileAgentTest, TruncateFeedsBlocksBackToDummyFile) {
  ProvisionDummy("alice", 128);
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(payload * 12, 5)).ok());
  const uint64_t dummies_before = agent_->dummy_block_count();
  ASSERT_TRUE(agent_->Truncate(*id, payload * 4).ok());
  EXPECT_EQ(agent_->dummy_block_count(), dummies_before + 8);
  EXPECT_EQ(*agent_->FileSize(*id), payload * 4);
}

TEST_F(VolatileAgentTest, DeleteFileAbsorbsEverything) {
  ProvisionDummy("alice", 128);
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(5 * core_.payload_size(), 1)).ok());
  const auto fak = agent_->GetFak(*id);
  const uint64_t domain_before = agent_->domain_size();
  ASSERT_TRUE(agent_->DeleteFile(*id).ok());
  // Every block stays disclosed (absorbed by the dummy file).
  EXPECT_EQ(agent_->domain_size(), domain_before);
  // The header was scrubbed: re-disclosure fails.
  EXPECT_FALSE(agent_->DiscloseHiddenFile("alice", *fak).ok());
}

TEST_F(VolatileAgentTest, OversizedDummyFileRejected) {
  const uint64_t cap = stegfs::MaxFileBlocks(core_.codec().block_size());
  EXPECT_EQ(agent_->CreateDummyFile("alice", cap + 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(VolatileAgentTest, CannotDeleteLastDummyFile) {
  const auto dummy = ProvisionDummy("alice", 16);
  EXPECT_EQ(agent_->DeleteFile(dummy).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(VolatileAgentTest, MultiUserIsolationAndSharedDomain) {
  ProvisionDummy("alice", 64);
  ProvisionDummy("bob", 64);
  auto fa = agent_->CreateHiddenFile("alice");
  auto fb = agent_->CreateHiddenFile("bob");
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  const Bytes da = Pattern(20000, 11);
  const Bytes db = Pattern(20000, 22);
  ASSERT_TRUE(agent_->Write(*fa, 0, da).ok());
  ASSERT_TRUE(agent_->Write(*fb, 0, db).ok());

  // Interleaved updates: relocations may cross user boundaries, yet both
  // users' data stays intact.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(agent_->Write(*fa, (i % 4) * 4080, Bytes(100, 1)).ok());
    ASSERT_TRUE(agent_->Write(*fb, (i % 4) * 4080, Bytes(100, 2)).ok());
  }
  EXPECT_EQ(agent_->Read(*fa, 10000, 100)->size(), 100u);
  EXPECT_EQ(*agent_->Read(*fa, 19000, 1000),
            Bytes(da.begin() + 19000, da.end()));
  EXPECT_EQ(*agent_->Read(*fb, 19000, 1000),
            Bytes(db.begin() + 19000, db.end()));

  // Bob logs out; alice keeps working.
  ASSERT_TRUE(agent_->Logout("bob").ok());
  ASSERT_TRUE(agent_->Write(*fa, 0, Bytes(50, 3)).ok());
  EXPECT_FALSE(agent_->Read(*fb, 0, 10).ok());  // bob's handle is gone
}

TEST_F(VolatileAgentTest, DoubleDisclosureRejected) {
  ProvisionDummy("alice");
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const auto fak = agent_->GetFak(*id);
  ASSERT_TRUE(agent_->Flush(*id).ok());
  EXPECT_EQ(agent_->DiscloseHiddenFile("alice", *fak).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VolatileAgentTest, IdleDummyUpdatesPreserveData) {
  ProvisionDummy("alice", 200);
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(40000, 17);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  ASSERT_TRUE(agent_->IdleDummyUpdates(500).ok());
  const auto back = agent_->Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(VolatileAgentTest, GrowthAcrossIndirectBoundary) {
  ProvisionDummy("alice", 1200);
  auto id = agent_->CreateHiddenFile("alice");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  const uint64_t blocks = stegfs::kNumDirectPtrs + 15;
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(blocks * payload, 0x77)).ok());
  ASSERT_TRUE(agent_->Flush(*id).ok());
  const auto fak = agent_->GetFak(*id);
  ASSERT_TRUE(agent_->Logout("alice").ok());

  auto re = agent_->DiscloseHiddenFile("alice", *fak);
  ASSERT_TRUE(re.ok());
  const auto back =
      agent_->Read(*re, (blocks - 3) * payload, 3 * payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes(3 * payload, 0x77));
}

}  // namespace
}  // namespace steghide::agent
