#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/cpu_features.h"
#include "crypto/drbg.h"
#include "crypto/drbg_streams.h"
#include "crypto/hmac.h"
#include "crypto/key.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace steghide::crypto {
namespace {

std::string DigestHex(const Sha256::Digest& d) {
  return ToHex(d.data(), d.size());
}

// ---- SHA-256 (FIPS 180-2 / NIST CAVS vectors) -------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      DigestHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.Update(std::string_view(&c, 1));
  EXPECT_EQ(DigestHex(h.Finish()), DigestHex(Sha256::Hash(msg)));
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("garbage");
  (void)h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestHex(h.Finish()), DigestHex(Sha256::Hash("abc")));
}

// Lengths straddling the 55/56/64-byte padding boundaries.
TEST(Sha256Test, PaddingBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    Sha256 h;
    h.Update(msg.substr(0, len / 2));
    h.Update(msg.substr(len / 2));
    EXPECT_EQ(DigestHex(h.Finish()), DigestHex(Sha256::Hash(msg)))
        << "length " << len;
  }
}

// ---- AES (FIPS 197 Appendix C vectors) --------------------------------

struct AesVector {
  size_t key_len;
  const char* expected;
};

class AesFipsTest : public ::testing::TestWithParam<AesVector> {};

TEST_P(AesFipsTest, KnownAnswer) {
  const AesVector& v = GetParam();
  Bytes key(v.key_len);
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  const Bytes plaintext = FromHex("00112233445566778899aabbccddeeff");

  Aes aes;
  ASSERT_TRUE(aes.SetKey(key).ok());
  uint8_t ct[16];
  aes.EncryptBlock(plaintext.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), v.expected);

  uint8_t pt[16];
  aes.DecryptBlock(ct, pt);
  EXPECT_EQ(ToHex(pt, 16), ToHex(plaintext));
}

INSTANTIATE_TEST_SUITE_P(
    Fips197, AesFipsTest,
    ::testing::Values(AesVector{16, "69c4e0d86a7b0430d8cdb78070b4c55a"},
                      AesVector{24, "dda97ca4864cdfe06eaf70a0ec0d7191"},
                      AesVector{32, "8ea2b7ca516745bfeafc49904b496089"}));

TEST(AesTest, RejectsBadKeyLength) {
  Aes aes;
  Bytes key(15);
  EXPECT_FALSE(aes.SetKey(key).ok());
  EXPECT_FALSE(aes.has_key());
}

TEST(AesTest, InPlaceBlockOps) {
  Aes aes;
  ASSERT_TRUE(aes.SetKey(Bytes(16, 0x42)).ok());
  uint8_t block[16];
  for (int i = 0; i < 16; ++i) block[i] = static_cast<uint8_t>(i);
  uint8_t original[16];
  memcpy(original, block, 16);
  aes.EncryptBlock(block, block);
  EXPECT_NE(memcmp(block, original, 16), 0);
  aes.DecryptBlock(block, block);
  EXPECT_EQ(memcmp(block, original, 16), 0);
}

TEST(AesTest, RoundTripRandomKeysProperty) {
  HashDrbg drbg(uint64_t{99});
  for (size_t key_len : {16u, 24u, 32u}) {
    for (int trial = 0; trial < 20; ++trial) {
      Aes aes;
      ASSERT_TRUE(aes.SetKey(drbg.Generate(key_len)).ok());
      Bytes pt = drbg.Generate(16);
      uint8_t ct[16], back[16];
      aes.EncryptBlock(pt.data(), ct);
      aes.DecryptBlock(ct, back);
      EXPECT_EQ(Bytes(back, back + 16), pt);
    }
  }
}

// ---- CBC (NIST SP 800-38A F.2.1/F.2.2) --------------------------------

TEST(CbcTest, Sp80038aVector) {
  CbcCipher cbc;
  ASSERT_TRUE(cbc.SetKey(FromHex("2b7e151628aed2a6abf7158809cf4f3c")).ok());
  Iv iv;
  const Bytes iv_bytes = FromHex("000102030405060708090a0b0c0d0e0f");
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());

  const Bytes plaintext = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const std::string expected =
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7";

  Bytes ct(plaintext.size());
  ASSERT_TRUE(
      cbc.Encrypt(iv, plaintext.data(), plaintext.size(), ct.data()).ok());
  EXPECT_EQ(ToHex(ct), expected);

  Bytes back(plaintext.size());
  ASSERT_TRUE(cbc.Decrypt(iv, ct.data(), ct.size(), back.data()).ok());
  EXPECT_EQ(back, plaintext);
}

TEST(CbcTest, RejectsUnalignedLength) {
  CbcCipher cbc;
  ASSERT_TRUE(cbc.SetKey(Bytes(16, 1)).ok());
  Iv iv{};
  Bytes buf(17);
  EXPECT_FALSE(cbc.Encrypt(iv, buf.data(), buf.size(), buf.data()).ok());
  EXPECT_FALSE(cbc.Decrypt(iv, buf.data(), buf.size(), buf.data()).ok());
}

TEST(CbcTest, RequiresKey) {
  CbcCipher cbc;
  Iv iv{};
  Bytes buf(16);
  EXPECT_EQ(cbc.Encrypt(iv, buf.data(), buf.size(), buf.data()).code(),
            StatusCode::kFailedPrecondition);
}

class CbcRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CbcRoundTripTest, RoundTripsAndDiffusesProperty) {
  const size_t n = GetParam();
  HashDrbg drbg(n);
  CbcCipher cbc;
  ASSERT_TRUE(cbc.SetKey(drbg.Generate(16)).ok());
  Iv iv;
  drbg.Generate(iv.data(), iv.size());

  const Bytes pt = drbg.Generate(n);
  Bytes ct(n), back(n);
  ASSERT_TRUE(cbc.Encrypt(iv, pt.data(), n, ct.data()).ok());
  ASSERT_TRUE(cbc.Decrypt(iv, ct.data(), n, back.data()).ok());
  EXPECT_EQ(back, pt);
  EXPECT_NE(ct, pt);

  // A different IV must change every ciphertext block (CBC chains from the
  // IV), which is what makes an IV refresh a convincing dummy update.
  Iv iv2 = iv;
  iv2[0] ^= 0x01;
  Bytes ct2(n);
  ASSERT_TRUE(cbc.Encrypt(iv2, pt.data(), n, ct2.data()).ok());
  for (size_t off = 0; off < n; off += 16) {
    EXPECT_NE(memcmp(ct.data() + off, ct2.data() + off, 16), 0)
        << "block at " << off << " unchanged";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbcRoundTripTest,
                         ::testing::Values(16, 32, 256, 4080));

// ---- HMAC-SHA256 (RFC 4231) --------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = HmacSha256::Mac(key, std::string_view("Hi There"));
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = {'J', 'e', 'f', 'e'};
  const auto mac =
      HmacSha256::Mac(key, std::string_view("what do ya want for nothing?"));
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const auto mac = HmacSha256::Mac(
      key, std::string_view("Test Using Larger Than Block-Size Key - "
                            "Hash Key First"));
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDiffer) {
  const Bytes m = {1, 2, 3};
  EXPECT_NE(ToHex(HmacSha256::Mac(Bytes{1}, m).data(), 32),
            ToHex(HmacSha256::Mac(Bytes{2}, m).data(), 32));
}

// ---- HashDrbg ----------------------------------------------------------

TEST(DrbgTest, DeterministicFromSeed) {
  HashDrbg a(uint64_t{42}), b(uint64_t{42}), c(uint64_t{43});
  const Bytes ba = a.Generate(64);
  const Bytes bb = b.Generate(64);
  const Bytes bc = c.Generate(64);
  EXPECT_EQ(ba, bb);
  EXPECT_NE(ba, bc);
}

TEST(DrbgTest, StreamIsPositionIndependent) {
  HashDrbg a(uint64_t{1}), b(uint64_t{1});
  Bytes whole = a.Generate(100);
  Bytes first = b.Generate(37);
  Bytes rest = b.Generate(63);
  first.insert(first.end(), rest.begin(), rest.end());
  EXPECT_EQ(whole, first);
}

TEST(DrbgTest, ReseedChangesStream) {
  HashDrbg a(uint64_t{5}), b(uint64_t{5});
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed({0xde, 0xad});
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, UniformBoundsAndCoverage) {
  HashDrbg drbg(uint64_t{7});
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = drbg.Uniform(13);
    ASSERT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(DrbgTest, OutputLooksBalanced) {
  // Monobit sanity: about half the bits of a long output are set.
  HashDrbg drbg(uint64_t{11});
  const Bytes out = drbg.Generate(1 << 16);
  uint64_t ones = 0;
  for (uint8_t b : out) ones += std::popcount(static_cast<unsigned>(b));
  const double frac = static_cast<double>(ones) / (out.size() * 8.0);
  EXPECT_NEAR(frac, 0.5, 0.01);
}


// ---- hardware dispatch ---------------------------------------------------

TEST(CpuFeaturesTest, OverrideForcesScalar) {
  {
    ScopedCryptoImpl scoped(CryptoImpl::kScalar);
    EXPECT_FALSE(AesAccelerated());
    EXPECT_FALSE(Sha256Accelerated());
    EXPECT_STREQ(CryptoImplName(ActiveCryptoImpl()), "scalar");
  }
  // The accelerated path reports "accel" only when both the CPU and the
  // build provide the kernels; either way the name is consistent.
  if (AesAccelerated() || Sha256Accelerated()) {
    EXPECT_STREQ(CryptoImplName(ActiveCryptoImpl()), "accel");
  }
}

TEST(CpuFeaturesTest, ObjectsLatchImplAtKeySetup) {
  // An Aes keyed while scalar is forced stays scalar for its lifetime
  // even after the override lifts — one object never mixes kernels.
  const Bytes key(16, 0x42);
  Aes forced;
  {
    ScopedCryptoImpl scoped(CryptoImpl::kScalar);
    ASSERT_TRUE(forced.SetKey(key).ok());
  }
  Aes current;
  ASSERT_TRUE(current.SetKey(key).ok());
  uint8_t in[16] = {1, 2, 3};
  uint8_t a[16], b[16];
  forced.EncryptBlock(in, a);
  current.EncryptBlock(in, b);
  EXPECT_EQ(std::memcmp(a, b, 16), 0);  // same cipher either way
}

TEST(CpuFeaturesTest, ScalarAndAcceleratedAgree) {
  // Property cross-check on top of the fixed vectors: for random keys and
  // messages the two paths must produce identical bytes in every mode.
  HashDrbg rng(uint64_t{0x5ca1a});
  for (int trial = 0; trial < 8; ++trial) {
    const size_t key_len = trial % 2 == 0 ? 16 : 32;
    const Bytes key = rng.Generate(key_len);
    const Bytes msg = rng.Generate(16 * (1 + trial % 7));
    Iv iv;
    rng.Generate(iv.data(), iv.size());

    Bytes ct_a(msg.size()), ct_b(msg.size());
    Bytes pt_a(msg.size()), pt_b(msg.size());
    {
      CbcCipher c;
      ASSERT_TRUE(c.SetKey(key).ok());
      ASSERT_TRUE(c.Encrypt(iv, msg.data(), msg.size(), ct_a.data()).ok());
      ASSERT_TRUE(c.Decrypt(iv, ct_a.data(), ct_a.size(), pt_a.data()).ok());
    }
    {
      ScopedCryptoImpl scoped(CryptoImpl::kScalar);
      CbcCipher c;
      ASSERT_TRUE(c.SetKey(key).ok());
      ASSERT_TRUE(c.Encrypt(iv, msg.data(), msg.size(), ct_b.data()).ok());
      ASSERT_TRUE(c.Decrypt(iv, ct_b.data(), ct_b.size(), pt_b.data()).ok());
    }
    EXPECT_EQ(ct_a, ct_b);
    EXPECT_EQ(pt_a, msg);
    EXPECT_EQ(pt_b, msg);

    const Bytes digest_in = rng.Generate(1 + trial * 37);
    Sha256::Digest d_a = Sha256::Hash(digest_in.data(), digest_in.size());
    Sha256::Digest d_b;
    {
      ScopedCryptoImpl scoped(CryptoImpl::kScalar);
      d_b = Sha256::Hash(digest_in.data(), digest_in.size());
    }
    EXPECT_EQ(d_a, d_b);
  }
}

// ---- multi-chain CBC batches ---------------------------------------------

class CbcChainsTest : public ::testing::TestWithParam<CryptoImpl> {};

TEST_P(CbcChainsTest, MatchesSequentialCalls) {
  ScopedCryptoImpl scoped(GetParam());
  HashDrbg rng(uint64_t{77});
  CbcCipher cipher;
  ASSERT_TRUE(cipher.SetKey(rng.Generate(16)).ok());

  // Chain counts straddling the 4-wide and (VAES) 8-wide kernel widths.
  for (const size_t nchains : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                               size_t{8}, size_t{13}, size_t{64}}) {
    const size_t n = 16 * 9;  // bytes per chain
    Bytes ivs_buf = rng.Generate(nchains * 16);
    Bytes ins_buf = rng.Generate(nchains * n);
    Bytes batch_out(nchains * n), seq_out(nchains * n);
    std::vector<const uint8_t*> ivs(nchains), ins(nchains);
    std::vector<uint8_t*> outs(nchains);
    for (size_t c = 0; c < nchains; ++c) {
      ivs[c] = ivs_buf.data() + c * 16;
      ins[c] = ins_buf.data() + c * n;
      outs[c] = batch_out.data() + c * n;
    }
    ASSERT_TRUE(
        cipher.EncryptChains(ivs.data(), ins.data(), outs.data(), n, nchains)
            .ok());
    for (size_t c = 0; c < nchains; ++c) {
      Iv iv;
      std::memcpy(iv.data(), ivs[c], 16);
      ASSERT_TRUE(
          cipher.Encrypt(iv, ins[c], n, seq_out.data() + c * n).ok());
    }
    EXPECT_EQ(batch_out, seq_out) << "encrypt nchains=" << nchains;

    // Decrypt the batch ciphertext back through DecryptChains.
    Bytes round(nchains * n);
    std::vector<const uint8_t*> cts(nchains);
    std::vector<uint8_t*> pts(nchains);
    for (size_t c = 0; c < nchains; ++c) {
      cts[c] = batch_out.data() + c * n;
      pts[c] = round.data() + c * n;
    }
    ASSERT_TRUE(
        cipher.DecryptChains(ivs.data(), cts.data(), pts.data(), n, nchains)
            .ok());
    EXPECT_EQ(round, ins_buf) << "decrypt nchains=" << nchains;
  }
}

INSTANTIATE_TEST_SUITE_P(Impls, CbcChainsTest,
                         ::testing::Values(CryptoImpl::kScalar,
                                           CryptoImpl::kAccel),
                         [](const auto& info) {
                           return info.param == CryptoImpl::kScalar
                                      ? "Scalar"
                                      : "Accel";
                         });

// ---- DRBG stream forking -------------------------------------------------

TEST(DrbgForkTest, ForkIsDeterministicAndConsumptionIndependent) {
  HashDrbg fresh(uint64_t{21});
  HashDrbg drained(uint64_t{21});
  (void)drained.Generate(4096);  // parent position must not matter
  const auto a = fresh.Fork("steghide-thread-stream", 1);
  const auto b = drained.Fork("steghide-thread-stream", 1);
  EXPECT_EQ(a->Generate(64), b->Generate(64));
}

TEST(DrbgForkTest, ForkConsumesNoParentOutput) {
  HashDrbg forked(uint64_t{22});
  (void)forked.Fork("steghide-thread-stream", 1);
  HashDrbg plain(uint64_t{22});
  EXPECT_EQ(forked.Generate(64), plain.Generate(64));
}

TEST(DrbgForkTest, DomainAndIdSeparateStreams) {
  HashDrbg parent(uint64_t{23});
  const Bytes s1 = parent.ForkSeed("steghide-thread-stream", 1);
  const Bytes s2 = parent.ForkSeed("steghide-thread-stream", 2);
  const Bytes s3 = parent.ForkSeed("other-domain", 1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_NE(parent.Fork("steghide-thread-stream", 1)->Generate(64),
            parent.Generate(64));
}

TEST(DrbgStreamsTest, SingleThreadEqualsPlainDrbg) {
  // The first (here: only) drawing thread owns the root stream, so a
  // single-threaded run is byte-identical to the shared-generator design
  // — which is what keeps every golden/trace test unchanged.
  DrbgStreams streams(uint64_t{31});
  HashDrbg plain(uint64_t{31});
  EXPECT_EQ(streams.ForThread().Generate(256), plain.Generate(256));
  EXPECT_EQ(streams.stream_count(), 1u);
}

TEST(DrbgStreamsTest, ThreadsGetDeterministicDisjointStreams) {
  // Same seed => the same set of per-thread streams regardless of which
  // OS thread arrives when; draws on one stream never perturb another.
  DrbgStreams streams(uint64_t{32});
  (void)streams.ForThread();  // main thread takes the root
  Bytes from_worker;
  std::thread worker(
      [&] { from_worker = streams.ForThread().Generate(64); });
  worker.join();

  HashDrbg root(uint64_t{32});
  EXPECT_EQ(root.Fork("steghide-thread-stream", 1)->Generate(64),
            from_worker);
  EXPECT_EQ(streams.stream_count(), 2u);
}

TEST(DrbgStreamsTest, ConcurrentDrawsAreRaceFreeAndPerThreadDeterministic) {
  // TSan hammer: many threads drawing concurrently, each checking its own
  // stream against an independently derived copy.
  DrbgStreams streams(uint64_t{33});
  (void)streams.ForThread();  // root pinned to the main thread
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Bytes> outs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HashDrbg& mine = streams.ForThread();
      Bytes acc;
      for (int i = 0; i < 64; ++i) {
        const Bytes chunk = mine.Generate(16 + (i % 3));
        acc.insert(acc.end(), chunk.begin(), chunk.end());
      }
      outs[t] = std::move(acc);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(streams.stream_count(), 1u + kThreads);

  // Every thread stream equals one of the deterministic forks 1..k, and
  // no two threads shared a stream.
  HashDrbg root(uint64_t{33});
  std::set<size_t> matched;
  for (int t = 0; t < kThreads; ++t) {
    bool found = false;
    for (size_t idx = 1; idx <= kThreads; ++idx) {
      auto fork = root.Fork("steghide-thread-stream", idx);
      Bytes expect;
      for (int i = 0; i < 64; ++i) {
        const Bytes chunk = fork->Generate(16 + (i % 3));
        expect.insert(expect.end(), chunk.begin(), chunk.end());
      }
      if (expect == outs[t]) {
        EXPECT_TRUE(matched.insert(idx).second)
            << "two threads shared fork " << idx;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "thread " << t << " stream matches no fork";
  }
}

// ---- key derivation ------------------------------------------------------

TEST(KeyTest, SubkeysAreLabelSeparated) {
  const Bytes master = {1, 2, 3, 4};
  const Bytes a = DeriveSubkey(master, "header");
  const Bytes b = DeriveSubkey(master, "content");
  EXPECT_EQ(a.size(), kDefaultKeyLen);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveSubkey(master, "header"));
}

TEST(KeyTest, DeriveUint64Deterministic) {
  const Bytes master = {9};
  EXPECT_EQ(DeriveUint64(master, "x"), DeriveUint64(master, "x"));
  EXPECT_NE(DeriveUint64(master, "x"), DeriveUint64(master, "y"));
}

TEST(KeyTest, PassphraseStretching) {
  const Bytes k1 = KeyFromPassphrase("hunter2", "salt", 100);
  const Bytes k2 = KeyFromPassphrase("hunter2", "salt", 100);
  const Bytes k3 = KeyFromPassphrase("hunter2", "pepper", 100);
  const Bytes k4 = KeyFromPassphrase("hunter3", "salt", 100);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, k4);
  EXPECT_EQ(k1.size(), kDefaultKeyLen);
}

}  // namespace
}  // namespace steghide::crypto
