// Suite for the sharded storage layer: ShardPool fork/join,
// ShardedBlockDevice striping and parallel-clock accounting,
// ShardedIoScheduler fan-out, and — the headline pin — per-shard trace
// equivalence: an oblivious store over K traced shards produces, on each
// shard, exactly the single-volume schedule restricted to that shard's
// residue class. The multi-threaded stress tests are the tsan/sanitize
// targets for the fan-out/join path (K=4 configuration).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "agent/dispatch/request_dispatcher.h"
#include "agent/oblivious_agent.h"
#include "storage/async/sharded_io_scheduler.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "storage/trace_device.h"
#include "storage/volume_set.h"
#include "testing/golden.h"
#include "workload/concurrency.h"

namespace steghide::storage {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;

// ---- ShardPool ---------------------------------------------------------

TEST(ShardPoolTest, RunsJobsOnDistinctThreadsAndJoins) {
  ShardPool pool(4);
  std::vector<std::thread::id> seen(4);
  std::vector<std::function<Status()>> jobs(4);
  for (size_t k = 0; k < 4; ++k) {
    jobs[k] = [&seen, k] {
      seen[k] = std::this_thread::get_id();
      return Status::OK();
    };
  }
  ASSERT_TRUE(pool.Run(std::move(jobs)).ok());
  std::sort(seen.begin(), seen.end());
  // One persistent thread per shard, all distinct (single-issuer per
  // shard device), and none of them is the calling thread.
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
  for (const auto& id : seen) EXPECT_NE(id, std::this_thread::get_id());
}

TEST(ShardPoolTest, ReportsFirstErrorInShardOrder) {
  ShardPool pool(3);
  std::vector<std::function<Status()>> jobs(3);
  jobs[0] = [] { return Status::OK(); };
  jobs[1] = [] { return Status::IoError("shard 1 failed"); };
  jobs[2] = [] { return Status::Corruption("shard 2 failed"); };
  const Status status = pool.Run(std::move(jobs));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "shard 1 failed");
}

TEST(ShardPoolTest, NullJobsAreSkipped) {
  ShardPool pool(2);
  bool ran = false;
  std::vector<std::function<Status()>> jobs(2);
  jobs[1] = [&ran] {
    ran = true;
    return Status::OK();
  };
  ASSERT_TRUE(pool.Run(std::move(jobs)).ok());
  EXPECT_TRUE(ran);
  // All-null is a no-op.
  ASSERT_TRUE(pool.Run(std::vector<std::function<Status()>>(2)).ok());
}

// ---- ShardedBlockDevice ------------------------------------------------

struct ShardedFixture {
  explicit ShardedFixture(size_t shards, uint64_t per_shard_blocks,
                          size_t block_size = 512)
      : block_size_(block_size) {
    std::vector<BlockDevice*> tops;
    for (size_t k = 0; k < shards; ++k) {
      mems.push_back(
          std::make_unique<MemBlockDevice>(per_shard_blocks, block_size));
      tops.push_back(mems.back().get());
    }
    device = std::make_unique<ShardedBlockDevice>(std::move(tops));
  }

  size_t block_size_;
  std::vector<std::unique_ptr<MemBlockDevice>> mems;
  std::unique_ptr<ShardedBlockDevice> device;
};

TEST(ShardedBlockDeviceTest, StripesGlobalBlocksRoundRobin) {
  ShardedFixture fx(4, 8);
  EXPECT_EQ(fx.device->num_blocks(), 32u);
  EXPECT_EQ(fx.device->shard_count(), 4u);
  for (uint64_t g : {0u, 1u, 5u, 18u, 31u}) {
    EXPECT_EQ(fx.device->GlobalBlock(
                  static_cast<size_t>(fx.device->ShardOf(g)),
                  fx.device->LocalBlock(g)),
              g);
  }
  // Write global block 13 and find it at shard 13 % 4 = 1, local 3.
  const Bytes image = GoldenBlock(5, 13, 512);
  ASSERT_TRUE(fx.device->WriteBlock(13, image.data()).ok());
  EXPECT_TRUE(steghide::testing::BlockEquals(*fx.mems[1], 3, image));
}

TEST(ShardedBlockDeviceTest, SingleBlockRoundTripAcrossAllShards) {
  ShardedFixture fx(3, 8);
  for (uint64_t g = 0; g < fx.device->num_blocks(); ++g) {
    const Bytes image = GoldenBlock(9, g, 512);
    ASSERT_TRUE(fx.device->WriteBlock(g, image.data()).ok());
  }
  for (uint64_t g = 0; g < fx.device->num_blocks(); ++g) {
    Bytes out(512);
    ASSERT_TRUE(fx.device->ReadBlock(g, out.data()).ok());
    EXPECT_EQ(out, GoldenBlock(9, g, 512)) << "block " << g;
  }
}

TEST(ShardedBlockDeviceTest, VectoredFanOutScattersAndGathers) {
  ShardedFixture fx(4, 16);
  // Scattered ids spanning every shard, in non-monotone order, with the
  // caller's buffer laid out in submission order.
  const std::vector<uint64_t> ids = {7, 0, 21, 2, 63, 12, 33, 5};
  Bytes data;
  for (uint64_t id : ids) {
    const Bytes block = GoldenBlock(31, id, 512);
    data.insert(data.end(), block.begin(), block.end());
  }
  ASSERT_TRUE(fx.device->WriteBlocks(ids, data.data()).ok());
  Bytes out(ids.size() * 512);
  ASSERT_TRUE(fx.device->ReadBlocks(ids, out.data()).ok());
  EXPECT_EQ(out, data);
  // Spot-check physical placement of one id per shard.
  for (uint64_t id : {0u, 21u, 7u, 2u}) {
    EXPECT_TRUE(steghide::testing::BlockEquals(
        *fx.mems[id % 4], id / 4, GoldenBlock(31, id, 512)))
        << "global " << id;
  }
}

TEST(ShardedBlockDeviceTest, OutOfRangeFailsAcrossTheJoin) {
  ShardedFixture fx(2, 4);  // 8 global blocks
  Bytes out(2 * 512);
  const std::vector<uint64_t> ids = {1, 9};
  EXPECT_EQ(fx.device->ReadBlocks(ids, out.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fx.device->ReadBlock(8, out.data()).code(),
            StatusCode::kOutOfRange);
}

TEST(ShardedBlockDeviceTest, ParallelClockChargesSlowestShardOfJoin) {
  // K sims over K mems; a fan-out touching all shards advances the
  // parallel clock by the max per-shard delta, strictly less than the
  // sum a single spindle would pay.
  constexpr size_t kShards = 4;
  std::vector<std::unique_ptr<MemBlockDevice>> mems;
  std::vector<std::unique_ptr<SimBlockDevice>> sims;
  std::vector<BlockDevice*> tops;
  for (size_t k = 0; k < kShards; ++k) {
    mems.push_back(std::make_unique<MemBlockDevice>(64, 512));
    sims.push_back(
        std::make_unique<SimBlockDevice>(mems.back().get(), DiskModelParams{}));
    tops.push_back(sims.back().get());
  }
  ShardedBlockDevice device(std::move(tops));
  auto* sims_ptr = &sims;
  device.set_shard_clock_fn(
      [sims_ptr](size_t k) { return (*sims_ptr)[k]->clock_ms(); });

  // 32 blocks striped over 4 shards: 8 per shard.
  std::vector<uint64_t> ids;
  for (uint64_t g = 0; g < 32; ++g) ids.push_back(g);
  Bytes out(ids.size() * 512);
  ASSERT_TRUE(device.ReadBlocks(ids, out.data()).ok());

  double sum = 0.0, max_shard = 0.0;
  for (size_t k = 0; k < kShards; ++k) {
    sum += sims[k]->clock_ms();
    max_shard = std::max(max_shard, sims[k]->clock_ms());
  }
  EXPECT_GT(device.clock_ms(), 0.0);
  EXPECT_GE(device.clock_ms(), max_shard - 1e-9);
  EXPECT_LT(device.clock_ms(), sum);
  // Every shard actually worked, so the parallel clock beats the serial
  // sum by roughly the shard count.
  EXPECT_LT(device.clock_ms(), 0.5 * sum);
}

// ---- ShardedIoScheduler ------------------------------------------------

struct TracedShardedFixture {
  explicit TracedShardedFixture(size_t shards, uint64_t per_shard_blocks,
                                size_t block_size = 512) {
    std::vector<BlockDevice*> tops;
    for (size_t k = 0; k < shards; ++k) {
      mems.push_back(
          std::make_unique<MemBlockDevice>(per_shard_blocks, block_size));
      traces.push_back(std::make_unique<TraceBlockDevice>(mems.back().get()));
      tops.push_back(traces.back().get());
    }
    device = std::make_unique<ShardedBlockDevice>(std::move(tops));
  }

  std::vector<std::unique_ptr<MemBlockDevice>> mems;
  std::vector<std::unique_ptr<TraceBlockDevice>> traces;
  std::unique_ptr<ShardedBlockDevice> device;
};

TEST(ShardedIoSchedulerTest, PreservePatternKeepsPerShardSubmissionOrder) {
  TracedShardedFixture fx(2, 32);
  ShardedIoScheduler scheduler(fx.device.get());
  scheduler.set_preserve_pattern(true);
  EXPECT_TRUE(scheduler.preserve_pattern());
  Bytes bufs(6 * 512);
  IoBatch batch;
  for (size_t i = 0; uint64_t id : {9, 4, 13, 6, 9, 2}) {
    batch.Read(id, bufs.data() + (i++) * 512);
  }
  IoFuture future = scheduler.Submit(std::move(batch));
  EXPECT_FALSE(future.done());
  EXPECT_FALSE(scheduler.idle());
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_TRUE(future.done());
  EXPECT_TRUE(future.status().ok());
  EXPECT_TRUE(scheduler.idle());
  // Shard 0 (even globals): 4, 6, 2 -> locals 2, 3, 1 in that order.
  const IoTrace expect0 = {{TraceEvent::Kind::kRead, 2},
                           {TraceEvent::Kind::kRead, 3},
                           {TraceEvent::Kind::kRead, 1}};
  // Shard 1 (odd globals): 9, 13, 9 -> locals 4, 6, 4, duplicate intact.
  const IoTrace expect1 = {{TraceEvent::Kind::kRead, 4},
                           {TraceEvent::Kind::kRead, 6},
                           {TraceEvent::Kind::kRead, 4}};
  EXPECT_EQ(fx.traces[0]->trace(), expect0);
  EXPECT_EQ(fx.traces[1]->trace(), expect1);
}

TEST(ShardedIoSchedulerTest, ForwardingWorksWithinEachShard) {
  TracedShardedFixture fx(2, 16);
  ShardedIoScheduler scheduler(fx.device.get());
  const Bytes image = GoldenBlock(3, 6, 512);
  Bytes out(512);
  IoBatch batch;
  batch.Write(6, image.data());
  batch.Read(6, out.data());
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  EXPECT_EQ(out, image);
  EXPECT_EQ(scheduler.stats().forwarded_reads, 1u);
  // Only the write reached shard 0; shard 1 saw nothing.
  EXPECT_EQ(fx.traces[0]->trace().size(), 1u);
  EXPECT_TRUE(fx.traces[1]->trace().empty());
}

TEST(ShardedIoSchedulerTest, AggregatesPerShardStats) {
  TracedShardedFixture fx(4, 16);
  ShardedIoScheduler scheduler(fx.device.get());
  ASSERT_TRUE(FillGolden(*fx.mems[0], 1).ok());

  // Per shard k: one write to global k, plus reads of globals k and k+4
  // (two distinct local blocks), plus a duplicate read of global k+4
  // that coalesces. 4 shards x (1 write + 3 reads).
  Bytes out(12 * 512);
  std::vector<Bytes> images;
  IoBatch batch;
  for (uint64_t k = 0; k < 4; ++k) {
    images.push_back(GoldenBlock(7, k, 512));
    batch.Write(k, images.back().data());
    batch.Read(k + 4, out.data() + (3 * k + 0) * 512);
    batch.Read(k + 4, out.data() + (3 * k + 1) * 512);
    batch.Read(k + 8, out.data() + (3 * k + 2) * 512);
  }
  ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());

  const IoSchedulerStats total = scheduler.stats();
  EXPECT_EQ(total.submitted_writes, 4u);
  EXPECT_EQ(total.submitted_reads, 12u);
  EXPECT_EQ(total.physical_writes, 4u);
  EXPECT_EQ(total.physical_reads, 8u);   // one per distinct block
  EXPECT_EQ(total.coalesced_reads, 4u);  // one duplicate per shard
  EXPECT_EQ(total.drains, 1u);           // one parallel drain
  ASSERT_EQ(scheduler.shard_count(), 4u);
  uint64_t sum_reads = 0;
  for (size_t k = 0; k < 4; ++k) {
    const IoSchedulerStats s = scheduler.shard_stats(k);
    EXPECT_EQ(s.submitted_reads, 3u) << "shard " << k;
    EXPECT_EQ(s.submitted_writes, 1u) << "shard " << k;
    EXPECT_EQ(s.coalesced_reads, 1u) << "shard " << k;
    sum_reads += s.physical_reads;
  }
  EXPECT_EQ(sum_reads, total.physical_reads);

  scheduler.ResetStats();
  const IoSchedulerStats cleared = scheduler.stats();
  EXPECT_EQ(cleared.submitted_reads, 0u);
  EXPECT_EQ(cleared.drains, 0u);
}

TEST(ShardedIoSchedulerTest, StatsSnapshotDuringLoadIsTearFree) {
  // Regression for the torn-counter aggregation: stats() used to sum
  // plain per-shard structs while shard threads were mid-increment (and
  // bumped a plain uint64_t drains_ from the issuer), so a snapshot
  // taken during a drain could tear. The counters are atomic cells now;
  // a poller racing the load must only ever see consistent,
  // monotonically growing values. Under TSan this is also the data-race
  // pin for snapshot-during-load.
  ShardedFixture fx(4, 64);
  ShardedIoScheduler scheduler(fx.device.get());
  std::atomic<bool> done{false};
  std::thread poller([&] {
    uint64_t last_reads = 0, last_drains = 0;
    while (!done.load(std::memory_order_acquire)) {
      const IoSchedulerStats s = scheduler.stats();
      EXPECT_GE(s.physical_reads, last_reads);
      EXPECT_GE(s.drains, last_drains);
      // Submits precede drains, but the poller's reads are not one
      // instant: the physical count read later can include reads whose
      // submit bump the earlier read missed. Bounding the submitted
      // count by the PREVIOUS iteration's physical count is robust
      // under any interleaving.
      EXPECT_GE(s.submitted_reads, last_reads);
      last_reads = s.physical_reads;
      last_drains = s.drains;
    }
  });
  const Bytes image = GoldenBlock(5, 0, 512);
  Bytes out(32 * 512);
  for (int round = 0; round < 64; ++round) {
    IoBatch batch;
    for (uint64_t i = 0; i < 32; ++i) {
      if (i % 4 == 0) {
        batch.Write(i, image.data());
      } else {
        batch.Read(i, out.data() + i * 512);
      }
    }
    ASSERT_TRUE(scheduler.Run(std::move(batch)).ok());
  }
  done.store(true, std::memory_order_release);
  poller.join();
  const IoSchedulerStats s = scheduler.stats();
  EXPECT_EQ(s.drains, 64u);
  EXPECT_EQ(s.submitted_reads, 64u * 24u);
}

TEST(ShardedIoSchedulerTest, ConcurrentSubmittersThroughOneIssuer) {
  // The scheduler itself follows the single-issuer contract, but the
  // data it carries comes from many threads; under TSan this pins the
  // join barrier's happens-before edge from every shard thread's I/O to
  // the caller's inspection of the buffers.
  ShardedFixture fx(4, 64);
  ShardedIoScheduler scheduler(fx.device.get());
  for (int round = 0; round < 8; ++round) {
    std::vector<Bytes> images(16);
    IoBatch write_batch;
    for (uint64_t i = 0; i < 16; ++i) {
      images[i] = GoldenBlock(round, i, 512);
      write_batch.Write(i, images[i].data());
    }
    ASSERT_TRUE(scheduler.Run(std::move(write_batch)).ok());
    Bytes out(16 * 512);
    IoBatch read_batch;
    for (uint64_t i = 0; i < 16; ++i) {
      read_batch.Read(i, out.data() + i * 512);
    }
    ASSERT_TRUE(scheduler.Run(std::move(read_batch)).ok());
    for (uint64_t i = 0; i < 16; ++i) {
      ASSERT_EQ(Bytes(out.begin() + i * 512, out.begin() + (i + 1) * 512),
                images[i])
          << "round " << round << " block " << i;
    }
  }
}

}  // namespace
}  // namespace steghide::storage

// ---- Per-shard trace equivalence over the full oblivious stack ---------

namespace steghide::agent {
namespace {

using storage::IoTrace;
using storage::TraceEvent;

oblivious::ObliviousStoreOptions StoreOptions(bool deamortize) {
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 128;  // levels 16, 32, 64, 128
  opts.partition_base = 0;
  opts.scratch_base = 2 * 128 - 2 * 8;  // 240
  opts.drbg_seed = 41;
  if (deamortize) {
    opts.deamortize_reorders = true;
    opts.shadow_base = 240 + 128;  // behind scratch, mirrors hierarchy
    opts.reorder_step_blocks = 1;
  }
  return opts;
}

/// Single-volume twin: one traced cache device under the agent.
struct SingleVolumeSystem {
  explicit SingleVolumeSystem(uint64_t seed, bool deamortize)
      : steg_mem(4096, 4096),
        cache_mem(768, 4096),
        cache_traced(&cache_mem),
        core(&steg_mem, stegfs::StegFsOptions{seed, true}) {
    EXPECT_TRUE(core.Format().ok());
    auto created =
        ObliviousAgent::Create(&core, &cache_traced, StoreOptions(deamortize));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    agent = std::move(created).value();
    EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  }

  storage::MemBlockDevice steg_mem;
  storage::MemBlockDevice cache_mem;
  storage::TraceBlockDevice cache_traced;
  stegfs::StegFsCore core;
  std::unique_ptr<ObliviousAgent> agent;
};

/// Sharded twin: same geometry, cache striped over K traced shards.
struct ShardedVolumeSystem {
  explicit ShardedVolumeSystem(uint64_t seed, bool deamortize, size_t shards)
      : steg_mem(4096, 4096),
        core(&steg_mem, stegfs::StegFsOptions{seed, true}) {
    std::vector<storage::BlockDevice*> tops;
    for (size_t k = 0; k < shards; ++k) {
      mems.push_back(std::make_unique<storage::MemBlockDevice>(
          (768 + shards - 1) / shards, 4096));
      traces.push_back(
          std::make_unique<storage::TraceBlockDevice>(mems.back().get()));
      tops.push_back(traces.back().get());
    }
    cache = std::make_unique<storage::ShardedBlockDevice>(std::move(tops));
    EXPECT_TRUE(core.Format().ok());
    auto created =
        ObliviousAgent::Create(&core, cache.get(), StoreOptions(deamortize));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    agent = std::move(created).value();
    EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  }

  storage::MemBlockDevice steg_mem;
  std::vector<std::unique_ptr<storage::MemBlockDevice>> mems;
  std::vector<std::unique_ptr<storage::TraceBlockDevice>> traces;
  std::unique_ptr<storage::ShardedBlockDevice> cache;
  stegfs::StegFsCore core;
  std::unique_ptr<ObliviousAgent> agent;
};

/// Runs the identical op mix against an agent: populate `files` hidden
/// files, then interleave reads and overwrites to force level appends,
/// re-orders (or re-order chains) and scans.
template <typename Sys>
std::vector<ObliviousAgent::FileId> DriveWorkload(Sys& sys, size_t files,
                                                  size_t blocks) {
  std::vector<ObliviousAgent::FileId> ids;
  const size_t payload = sys.core.payload_size();
  for (size_t f = 0; f < files; ++f) {
    auto id = sys.agent->CreateHiddenFile("u");
    EXPECT_TRUE(id.ok());
    Bytes data(blocks * payload);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(f * 37 + i / payload);
    }
    EXPECT_TRUE(sys.agent->Write(*id, 0, data).ok());
    ids.push_back(*id);
  }
  for (size_t round = 0; round < 3; ++round) {
    for (size_t f = 0; f < files; ++f) {
      EXPECT_TRUE(sys.agent->Read(ids[f], 0, blocks * payload).ok());
    }
    EXPECT_TRUE(
        sys.agent->Write(ids[round % files], payload,
                         Bytes(payload, static_cast<uint8_t>(round)))
            .ok());
  }
  return ids;
}

/// The single-volume trace restricted to shard k's residue class, with
/// block ids remapped to shard-local offsets.
IoTrace RestrictToShard(const IoTrace& trace, size_t shard, size_t shards) {
  IoTrace out;
  for (const TraceEvent& ev : trace) {
    if (ev.block_id % shards == shard) {
      out.push_back({ev.kind, ev.block_id / shards});
    }
  }
  return out;
}

IoTrace Sorted(IoTrace trace) {
  std::sort(trace.begin(), trace.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.block_id != b.block_id ? a.block_id < b.block_id
                                              : a.kind < b.kind;
            });
  return trace;
}

void CheckPerShardTraceEquivalence(bool deamortize) {
  constexpr size_t kShards = 4;
  SingleVolumeSystem single(4242, deamortize);
  ShardedVolumeSystem sharded(4242, deamortize, kShards);
  EXPECT_EQ(sharded.agent->store().io_shard_count(), kShards);

  DriveWorkload(single, 6, 4);
  DriveWorkload(sharded, 6, 4);

  for (size_t k = 0; k < kShards; ++k) {
    const IoTrace expected =
        RestrictToShard(single.cache_traced.trace(), k, kShards);
    const IoTrace& actual = sharded.traces[k]->trace();
    // The acceptance bar is multiset equality (each shard's touch
    // multiset = the single-volume schedule restricted to that shard);
    // the stripe map preserves per-shard issue order too, so the
    // sequences themselves match.
    EXPECT_EQ(Sorted(actual), Sorted(expected)) << "shard " << k;
    EXPECT_EQ(actual, expected) << "shard " << k << " (sequence)";
  }
}

TEST(ShardedTraceEquivalenceTest, BlockingReorders) {
  CheckPerShardTraceEquivalence(/*deamortize=*/false);
}

TEST(ShardedTraceEquivalenceTest, DeamortizedReorderChains) {
  CheckPerShardTraceEquivalence(/*deamortize=*/true);
}

TEST(ShardedTraceEquivalenceTest, ShadowPhaseSeparatesSpindles) {
  // With the shadow mirror offset by one block, every slot's ping-pong
  // twin lands on a different spindle (the phase difference is 1 mod K);
  // the flat layout (shadow_base % K == 0) does not separate.
  constexpr size_t kShards = 4;
  ShardedVolumeSystem flat(77, /*deamortize=*/true, kShards);
  EXPECT_FALSE(flat.agent->store().shadow_spindle_separated());

  // A twin with the +1 phase shift: shadow_base 369 instead of 368.
  storage::MemBlockDevice steg_mem(4096, 4096);
  stegfs::StegFsCore core(&steg_mem, stegfs::StegFsOptions{77, true});
  ASSERT_TRUE(core.Format().ok());
  std::vector<std::unique_ptr<storage::MemBlockDevice>> mems;
  std::vector<storage::BlockDevice*> tops;
  for (size_t k = 0; k < kShards; ++k) {
    mems.push_back(std::make_unique<storage::MemBlockDevice>(200, 4096));
    tops.push_back(mems.back().get());
  }
  storage::ShardedBlockDevice cache(std::move(tops));
  auto opts = StoreOptions(/*deamortize=*/true);
  opts.shadow_base += 1;  // 369: phase 1 mod 4 for every level
  auto created = ObliviousAgent::Create(&core, &cache, opts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto agent = std::move(created).value();
  EXPECT_TRUE(agent->store().deamortized());
  EXPECT_TRUE(agent->store().shadow_spindle_separated());

  // The phased geometry still serves correctly end to end.
  EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  const size_t payload = core.payload_size();
  auto id = agent->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  Bytes data(8 * payload, 0xd7);
  ASSERT_TRUE(agent->Write(*id, 0, data).ok());
  auto back = agent->Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

// ---- Dispatcher over a K=4 sharded cache (tsan/sanitize target) --------

TEST(ShardedDispatchStressTest, ConcurrentSessionsOverShardedCache) {
  constexpr size_t kShards = 4;
  constexpr size_t kUsers = 8;
  constexpr size_t kBlocks = 3;
  ShardedVolumeSystem sys(9001, /*deamortize=*/true, kShards);
  auto ids = DriveWorkload(sys, kUsers, kBlocks);
  const size_t payload = sys.core.payload_size();

  DispatcherOptions options;
  options.max_batch = 8;
  options.commit_window = std::chrono::milliseconds(20);
  RequestDispatcher dispatcher(sys.agent.get(), options);
  {
    std::vector<std::unique_ptr<RequestDispatcher::Session>> sessions;
    for (size_t u = 0; u < kUsers; ++u) {
      sessions.push_back(dispatcher.OpenSession());
    }
    std::vector<std::function<Status()>> tasks;
    for (size_t u = 0; u < kUsers; ++u) {
      tasks.push_back([&, u]() -> Status {
        for (size_t round = 0; round < 4; ++round) {
          auto back = sessions[u]->Read(ids[u], 0, kBlocks * payload);
          STEGHIDE_RETURN_IF_ERROR(back.status());
          if (back->size() != kBlocks * payload) {
            return Status::Internal("short read");
          }
          STEGHIDE_RETURN_IF_ERROR(sessions[u]->Write(
              ids[u], 0, Bytes(payload, static_cast<uint8_t>(u + round))));
        }
        return Status::OK();
      });
    }
    for (const Status& status : workload::RunOnThreads(std::move(tasks))) {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  dispatcher.Stop();
  // Tail re-order chains drain clean.
  bool more = true;
  while (more) {
    ASSERT_TRUE(sys.agent->store().StepReorder(1u << 20, &more).ok());
  }
  // Every user's final image is readable and consistent.
  for (size_t u = 0; u < kUsers; ++u) {
    auto back = sys.agent->Read(ids[u], 0, payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, Bytes(payload, static_cast<uint8_t>(u + 3)));
  }
}

}  // namespace
}  // namespace steghide::agent
