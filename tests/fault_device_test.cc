// Fault-matrix suite for the failure-path plumbing: the scripted
// FaultInjectionBlockDevice (every fault kind, determinism, vectored
// mid-batch semantics), the RetryingBlockDevice budget, the IoScheduler
// retry path (including error propagation through IoFuture), and the
// regression tests for the stuck-maintenance bug — a transient fault
// mid-reorder-cascade must leave the chain resumable at the store level
// and must never wedge the dispatcher's idle pump.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "agent/dispatch/request_dispatcher.h"
#include "agent/oblivious_agent.h"
#include "obs/metrics.h"
#include "storage/async/io_scheduler.h"
#include "storage/async/sharded_io_scheduler.h"
#include "storage/fault_device.h"
#include "storage/mem_block_device.h"
#include "storage/retry_device.h"
#include "storage/volume_set.h"
#include "testing/golden.h"

namespace steghide::storage {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;

// ---- FaultInjectionBlockDevice ------------------------------------------

TEST(FaultDeviceTest, TransientErrorFiresOnScheduleAndRecovers) {
  MemBlockDevice mem(16, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.every_nth = 3;  // op indices 0, 3, 6, ... fail
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);

  const Bytes image = GoldenBlock(1, 0, 512);
  EXPECT_EQ(fault.WriteBlock(0, image.data()).code(), StatusCode::kIoError);
  // A retry is a new op index (1), off the schedule.
  EXPECT_TRUE(fault.WriteBlock(0, image.data()).ok());
  EXPECT_TRUE(fault.WriteBlock(1, image.data()).ok());
  EXPECT_EQ(fault.WriteBlock(2, image.data()).code(), StatusCode::kIoError);

  const FaultStats stats = fault.stats();
  EXPECT_EQ(stats.ops, 4u);
  EXPECT_EQ(stats.injected_errors, 2u);
}

TEST(FaultDeviceTest, MaxFiresCapsATransientSpec) {
  MemBlockDevice mem(16, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.every_nth = 1;
  spec.max_fires = 2;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);

  Bytes out(512);
  EXPECT_FALSE(fault.ReadBlock(0, out.data()).ok());
  EXPECT_FALSE(fault.ReadBlock(0, out.data()).ok());
  // Budget burned: the spec never fires again.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fault.ReadBlock(0, out.data()).ok());
  }
  EXPECT_EQ(fault.stats().injected_errors, 2u);
}

TEST(FaultDeviceTest, StickyErrorLatchesTheRegionForever) {
  MemBlockDevice mem(16, 512);
  ASSERT_TRUE(FillGolden(mem, 7).ok());
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kStickyError;
  spec.ops = FaultSpec::OpFilter::kRead;
  spec.first_block = 4;
  spec.last_block = 6;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);

  Bytes out(512);
  for (int attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(fault.ReadBlock(5, out.data()).code(), StatusCode::kIoError);
  }
  // Outside the bad region — and writes into it — keep working.
  EXPECT_TRUE(fault.ReadBlock(3, out.data()).ok());
  EXPECT_TRUE(fault.ReadBlock(7, out.data()).ok());
  EXPECT_TRUE(fault.WriteBlock(5, out.data()).ok());
}

TEST(FaultDeviceTest, CorruptReadIsSilentAndDeterministic) {
  MemBlockDevice mem(8, 512);
  ASSERT_TRUE(FillGolden(mem, 3).ok());
  FaultPlan plan;
  plan.seed = 99;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kCorrupt;
  spec.ops = FaultSpec::OpFilter::kRead;
  spec.every_nth = 2;
  plan.faults.push_back(spec);

  FaultInjectionBlockDevice fault(&mem, plan);
  Bytes corrupted(512);
  // Op 0 matches: Status OK, bytes flipped (silent bit-rot).
  ASSERT_TRUE(fault.ReadBlock(2, corrupted.data()).ok());
  EXPECT_NE(corrupted, GoldenBlock(3, 2, 512));
  EXPECT_EQ(fault.stats().corrupted_blocks, 1u);
  // Op 1 does not match: clean read, and the backing store was never
  // touched by the corruption.
  Bytes clean(512);
  ASSERT_TRUE(fault.ReadBlock(2, clean.data()).ok());
  EXPECT_EQ(clean, GoldenBlock(3, 2, 512));

  // Same plan + seed + op sequence => identical corrupted bytes.
  FaultInjectionBlockDevice twin(&mem, plan);
  Bytes corrupted_twin(512);
  ASSERT_TRUE(twin.ReadBlock(2, corrupted_twin.data()).ok());
  EXPECT_EQ(corrupted_twin, corrupted);
}

TEST(FaultDeviceTest, TornWritePersistsAPrefixThenFails) {
  MemBlockDevice mem(8, 512);
  const Bytes old_image(512, 0xaa);
  ASSERT_TRUE(mem.WriteBlock(1, old_image.data()).ok());
  FaultPlan plan;
  plan.seed = 5;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTorn;
  spec.ops = FaultSpec::OpFilter::kWrite;
  spec.max_fires = 1;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);

  const Bytes new_image(512, 0x55);
  EXPECT_EQ(fault.WriteBlock(1, new_image.data()).code(),
            StatusCode::kIoError);
  EXPECT_EQ(fault.stats().torn_writes, 1u);

  Bytes on_disk(512);
  ASSERT_TRUE(mem.ReadBlock(1, on_disk.data()).ok());
  // A seeded-length prefix carries the new bytes, the tail the old —
  // a torn sector, not a no-op and not a clean write.
  EXPECT_EQ(on_disk.front(), 0x55);
  EXPECT_EQ(on_disk.back(), 0xaa);
  size_t boundary = 0;
  while (boundary < 512 && on_disk[boundary] == 0x55) ++boundary;
  for (size_t i = boundary; i < 512; ++i) EXPECT_EQ(on_disk[i], 0xaa);

  // Re-driving the same write completes the torn sector.
  EXPECT_TRUE(fault.WriteBlock(1, new_image.data()).ok());
  ASSERT_TRUE(mem.ReadBlock(1, on_disk.data()).ok());
  EXPECT_EQ(on_disk, new_image);
}

TEST(FaultDeviceTest, LatencySpikeChargesTheSink) {
  MemBlockDevice mem(8, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kLatency;
  spec.latency_ms = 12.5;
  spec.every_nth = 2;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);
  double charged = 0.0;
  fault.set_latency_fn([&charged](double ms) { charged += ms; });

  Bytes out(512);
  ASSERT_TRUE(fault.ReadBlock(0, out.data()).ok());  // op 0: spike
  ASSERT_TRUE(fault.ReadBlock(0, out.data()).ok());  // op 1: clean
  ASSERT_TRUE(fault.ReadBlock(0, out.data()).ok());  // op 2: spike
  EXPECT_DOUBLE_EQ(charged, 25.0);
  EXPECT_EQ(fault.stats().latency_events, 2u);
}

TEST(FaultDeviceTest, DeathStopsEverythingUntilRevive) {
  MemBlockDevice mem(8, 512);
  ASSERT_TRUE(FillGolden(mem, 11).ok());
  FaultInjectionBlockDevice fault(&mem, {});

  Bytes out(512);
  ASSERT_TRUE(fault.ReadBlock(0, out.data()).ok());
  fault.Kill();
  EXPECT_TRUE(fault.dead());
  EXPECT_EQ(fault.ReadBlock(0, out.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(fault.WriteBlock(0, out.data()).code(), StatusCode::kIoError);
  EXPECT_FALSE(fault.Flush().ok());
  fault.Revive();
  EXPECT_TRUE(fault.ReadBlock(0, out.data()).ok());
  EXPECT_TRUE(fault.Flush().ok());
}

TEST(FaultDeviceTest, PlannedDeathTriggersAtTheScriptedOp) {
  MemBlockDevice mem(8, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDeath;
  spec.start_after = 3;
  spec.max_fires = 1;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);

  Bytes out(512);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fault.ReadBlock(0, out.data()).ok()) << "op " << i;
  }
  EXPECT_FALSE(fault.ReadBlock(0, out.data()).ok());  // op 3: the plug
  EXPECT_TRUE(fault.dead());
  EXPECT_FALSE(fault.ReadBlock(0, out.data()).ok());
}

TEST(FaultDeviceTest, VectoredWriteFailsMidBatchLeavingEarlierBlocks) {
  MemBlockDevice mem(8, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.start_after = 2;  // third per-block op of the batch
  spec.max_fires = 1;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);

  Bytes data(4 * 512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i / 512 + 1);
  }
  const std::vector<uint64_t> ids = {0, 1, 2, 3};
  EXPECT_FALSE(fault.WriteBlocks(ids, data.data()).ok());

  // Blocks before the failing op are durable; the failed one and its
  // successors never reached the backing device (a torn batch).
  Bytes out(512);
  ASSERT_TRUE(mem.ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, Bytes(512, 1));
  ASSERT_TRUE(mem.ReadBlock(1, out.data()).ok());
  EXPECT_EQ(out, Bytes(512, 2));
  ASSERT_TRUE(mem.ReadBlock(2, out.data()).ok());
  EXPECT_EQ(out, Bytes(512, 0));
  ASSERT_TRUE(mem.ReadBlock(3, out.data()).ok());
  EXPECT_EQ(out, Bytes(512, 0));

  // Re-driving the whole batch (what the retry layers do) completes it.
  EXPECT_TRUE(fault.WriteBlocks(ids, data.data()).ok());
  ASSERT_TRUE(mem.ReadBlock(3, out.data()).ok());
  EXPECT_EQ(out, Bytes(512, 4));
}

// ---- RetryingBlockDevice -------------------------------------------------

TEST(RetryDeviceTest, BackoffChargesTheLatencySink) {
  MemBlockDevice mem(8, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.max_fires = 2;  // ops 0 and 1 fail, op 2 succeeds
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  RetryingBlockDevice retry(&fault, policy);
  double charged = 0.0;
  retry.set_latency_fn([&charged](double ms) { charged += ms; });

  Bytes out(512);
  ASSERT_TRUE(retry.ReadBlock(0, out.data()).ok());
  // Two retries: 1.0ms before the first, 2.0ms before the second.
  EXPECT_DOUBLE_EQ(charged, 3.0);
  const RetryStats stats = retry.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryDeviceTest, BackoffJitterIsDeterministicAndBounded) {
  RetryPolicy base;
  base.max_attempts = 5;
  base.backoff_ms = 1.0;
  base.backoff_multiplier = 2.0;

  // jitter = 0 (the default, relied on by the exact-charge pins above)
  // reproduces the exact un-jittered ladder.
  EXPECT_DOUBLE_EQ(base.BackoffFor(0), 1.0);
  EXPECT_DOUBLE_EQ(base.BackoffFor(1), 2.0);
  EXPECT_DOUBLE_EQ(base.BackoffFor(2), 4.0);

  RetryPolicy jittered = base;
  jittered.jitter = 0.25;
  RetryPolicy seeded = jittered.WithJitterSeed(0xfeedULL);
  for (int i = 0; i < 4; ++i) {
    const double ladder = base.BackoffFor(i);
    const double ms = seeded.BackoffFor(i);
    // Bounded: within [1 - jitter, 1 + jitter] of the un-jittered value.
    EXPECT_GE(ms, ladder * 0.75) << "retry " << i;
    EXPECT_LE(ms, ladder * 1.25) << "retry " << i;
    // Deterministic: a pure function of (seed, retry index) — twin
    // schedules with equal seeds are byte-identical.
    EXPECT_DOUBLE_EQ(ms, jittered.WithJitterSeed(0xfeedULL).BackoffFor(i));
  }

  // Distinct seeds decorrelate: R replicas retrying the same transient
  // fault must not thunder in lockstep.
  bool any_differ = false;
  for (int i = 0; i < 4; ++i) {
    if (seeded.BackoffFor(i) !=
        jittered.WithJitterSeed(0xbeefULL).BackoffFor(i)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(RetryDeviceTest, NonIoErrorsAreNotRetried) {
  MemBlockDevice mem(8, 512);
  RetryingBlockDevice retry(&mem);
  Bytes out(512);
  // Out-of-range is kInvalidArgument territory: one attempt, no retry.
  EXPECT_FALSE(retry.ReadBlock(100, out.data()).ok());
  EXPECT_EQ(retry.stats().retries, 0u);
}

// ---- IoScheduler retry budget -------------------------------------------

TEST(IoSchedulerRetryTest, TransientErrorsRecoverWithinBudget) {
  MemBlockDevice mem(32, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.every_nth = 5;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);
  IoScheduler scheduler(&fault);
  RetryPolicy policy;
  policy.max_attempts = 3;
  scheduler.set_retry_policy(policy);

  // Buffers at stride 2*block_size inside one arena, so no pair sits
  // exactly block_size apart and the scheduler cannot fold the batch
  // into one vectored run (separate heap allocations may land
  // contiguous under some allocators). Each block is then its own
  // physical issue: a failed single-block issue retries at a fresh op
  // index, which is off the every-5th schedule.
  std::vector<Bytes> images;
  Bytes write_arena(16 * 2 * 512);
  IoBatch writes;
  for (uint64_t b = 0; b < 16; ++b) {
    images.push_back(GoldenBlock(13, b, 512));
    std::memcpy(write_arena.data() + b * 2 * 512, images[b].data(), 512);
    writes.Write(b, write_arena.data() + b * 2 * 512);
  }
  IoFuture wf = scheduler.Submit(std::move(writes));
  ASSERT_TRUE(scheduler.Drain().ok());
  ASSERT_TRUE(wf.done());
  EXPECT_TRUE(wf.status().ok());

  Bytes read_arena(16 * 2 * 512);
  IoBatch reads;
  for (uint64_t b = 0; b < 16; ++b) {
    reads.Read(b, read_arena.data() + b * 2 * 512);
  }
  IoFuture rf = scheduler.Submit(std::move(reads));
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_TRUE(rf.status().ok());
  for (uint64_t b = 0; b < 16; ++b) {
    EXPECT_EQ(0, std::memcmp(read_arena.data() + b * 2 * 512,
                             images[b].data(), 512))
        << "block " << b;
  }

  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
  EXPECT_GT(fault.stats().injected_errors, 0u);
}

TEST(IoSchedulerRetryTest, ExhaustedBudgetSurfacesThroughTheFuture) {
  MemBlockDevice mem(32, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kStickyError;
  spec.first_block = 3;
  spec.last_block = 3;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);
  IoScheduler scheduler(&fault);
  RetryPolicy policy;
  policy.max_attempts = 2;
  scheduler.set_retry_policy(policy);

  Bytes good(512), bad(512);
  IoBatch batch;
  batch.Read(1, good.data());
  batch.Read(3, bad.data());
  IoFuture future = scheduler.Submit(std::move(batch));
  const Status status = scheduler.Drain();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // Error propagation is all-or-nothing per drain: the future carries
  // the failure even though block 1 itself was readable.
  ASSERT_TRUE(future.done());
  EXPECT_EQ(future.status().code(), StatusCode::kIoError);
  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retry_exhausted, 1u);
}

TEST(IoSchedulerRetryTest, WithoutAPolicyErrorsFailFast) {
  MemBlockDevice mem(8, 512);
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.max_fires = 1;
  plan.faults.push_back(spec);
  FaultInjectionBlockDevice fault(&mem, plan);
  IoScheduler scheduler(&fault);

  Bytes out(512);
  IoBatch batch;
  batch.Read(0, out.data());
  IoFuture future = scheduler.Submit(std::move(batch));
  EXPECT_FALSE(scheduler.Drain().ok());
  EXPECT_FALSE(future.status().ok());
  EXPECT_EQ(scheduler.stats().retries, 0u);
}

TEST(IoSchedulerRetryTest, ShardedSchedulerFansThePolicyOut) {
  VolumeSet::Options options;
  options.shards = 2;
  options.total_blocks = 64;
  options.block_size = 512;
  options.fault_plan = [](size_t shard, size_t) {
    FaultPlan plan;
    plan.seed = shard;
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kTransientError;
    spec.every_nth = 7;
    plan.faults.push_back(spec);
    return plan;
  };
  VolumeSet volumes(options);
  ShardedIoScheduler scheduler(&volumes.device());
  RetryPolicy policy;
  policy.max_attempts = 4;
  scheduler.set_retry_policy(policy);
  // A flaky shard can carry a deeper budget than its peers.
  policy.max_attempts = 6;
  scheduler.set_shard_retry_policy(1, policy);

  std::vector<Bytes> images;
  IoBatch writes;
  for (uint64_t b = 0; b < 32; ++b) {
    images.push_back(GoldenBlock(29, b, 512));
    writes.Write(b, images[b].data());
  }
  IoFuture wf = scheduler.Submit(std::move(writes));
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_TRUE(wf.status().ok());

  std::vector<Bytes> out(32, Bytes(512));
  IoBatch reads;
  for (uint64_t b = 0; b < 32; ++b) reads.Read(b, out[b].data());
  IoFuture rf = scheduler.Submit(std::move(reads));
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_TRUE(rf.status().ok());
  for (uint64_t b = 0; b < 32; ++b) {
    EXPECT_EQ(out[b], images[b]) << "block " << b;
  }
  const IoSchedulerStats stats = scheduler.stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
}

}  // namespace
}  // namespace steghide::storage

// ---- Transient fault mid-cascade: store and dispatcher regressions ------

namespace steghide::agent {
namespace {

oblivious::ObliviousStoreOptions DeamortizedOptions() {
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 128;  // levels 16, 32, 64, 128
  opts.partition_base = 0;
  opts.scratch_base = 2 * 128 - 2 * 8;  // 240
  opts.drbg_seed = 41;
  opts.deamortize_reorders = true;
  opts.shadow_base = 240 + 128;
  opts.reorder_step_blocks = 1;  // chains linger across many slices
  return opts;
}

/// Agent system whose oblivious cache sits on a killable fault device.
struct FaultySystem {
  explicit FaultySystem(uint64_t seed)
      : steg_mem(4096, 4096),
        cache_mem(768, 4096),
        cache_fault(&cache_mem, {}),
        core(&steg_mem, stegfs::StegFsOptions{seed, true}) {
    EXPECT_TRUE(core.Format().ok());
    auto created =
        ObliviousAgent::Create(&core, &cache_fault, DeamortizedOptions());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    agent = std::move(created).value();
    EXPECT_TRUE(agent->CreateDummyFile("u", 600).ok());
  }

  /// Creates `files` hidden files of `blocks` payload blocks each.
  std::vector<ObliviousAgent::FileId> Populate(size_t files, size_t blocks) {
    std::vector<ObliviousAgent::FileId> ids;
    const size_t payload = core.payload_size();
    for (size_t f = 0; f < files; ++f) {
      auto id = agent->CreateHiddenFile("u");
      EXPECT_TRUE(id.ok());
      Bytes data(blocks * payload);
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(f * 37 + i / payload);
      }
      EXPECT_TRUE(agent->Write(*id, 0, data).ok());
      ids.push_back(*id);
    }
    return ids;
  }

  /// Re-stages a small store-layer working set until an incremental
  /// re-order chain is left mid-flight. Agent requests pay serving taxes
  /// op by op, which drains shallow chains before the call returns; raw
  /// MultiInsert bursts stop paying the moment the call ends, so a
  /// cascade reliably outlives the burst that triggered it.
  void BuildReorderBacklog() {
    auto& store = agent->store();
    uint64_t next_id = 1 << 20;
    // Pre-fill deep levels with everything drained, so the burst below
    // triggers a cascade too large to finish inside one call's taxes.
    {
      Bytes fill(8 * store.payload_size(), 0x11);
      std::vector<oblivious::RecordId> rids(8);
      for (int round = 0; round < 8; ++round) {
        for (auto& id : rids) id = next_id++;
        ASSERT_TRUE(store.MultiInsert(rids, fill.data()).ok());
        bool more = true;
        while (more) ASSERT_TRUE(store.StepReorder(1u << 20, &more).ok());
      }
    }
    Bytes payloads(16 * store.payload_size(), 0x5a);
    std::vector<oblivious::RecordId> fresh(16);
    for (auto& id : fresh) id = next_id++;
    for (int round = 0; round < 8 && !store.reorder_pending(); ++round) {
      // Re-staging the same ids keeps the flush pressure up without
      // growing the present set past capacity.
      ASSERT_TRUE(store.MultiInsert(fresh, payloads.data()).ok());
    }
    ASSERT_TRUE(store.reorder_pending()) << "no chain ever went pending";
  }

  storage::MemBlockDevice steg_mem;
  storage::MemBlockDevice cache_mem;
  storage::FaultInjectionBlockDevice cache_fault;
  stegfs::StegFsCore core;
  std::unique_ptr<ObliviousAgent> agent;
};

TEST(FaultyCascadeTest, StoreChainSurvivesATransientFaultMidCascade) {
  FaultySystem sys(2024);
  const auto ids = sys.Populate(6, 4);
  sys.BuildReorderBacklog();
  const size_t payload = sys.core.payload_size();

  // Pull the plug mid-chain: the pump slice fails but must leave the
  // chain pending and resumable, not half-consumed.
  sys.cache_fault.Kill();
  bool more = true;
  const Status failed = sys.agent->store().StepReorder(8, &more);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_TRUE(sys.agent->store().reorder_pending());

  // Power restored: the same chain drains to completion.
  sys.cache_fault.Revive();
  while (sys.agent->store().reorder_pending()) {
    ASSERT_TRUE(sys.agent->store().StepReorder(1 << 20, &more).ok());
  }

  // Every record written before, during and after the fault reads back.
  for (size_t f = 0; f < ids.size(); ++f) {
    auto back = sys.agent->Read(ids[f], 0, 4 * payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_EQ(Bytes(back->begin() + b * payload,
                      back->begin() + (b + 1) * payload),
                Bytes(payload, static_cast<uint8_t>(f * 37 + b)));
    }
  }
}

TEST(FaultyCascadeTest, DispatcherPumpRetriesInsteadOfWedging) {
  // The stuck-maintenance regression: with the chain pending, the queue
  // empty, and the device dead, every idle pump slice fails. The
  // historical behaviour parked the worker on the condvar forever — no
  // submission ever came to signal it in the idle-system case, and the
  // chain never drained. The fixed worker retries with bounded backoff,
  // counts the failures, escalates past the retry limit, and finishes
  // the chain as soon as the device recovers.
  FaultySystem sys(2025);
  sys.Populate(6, 4);
  sys.BuildReorderBacklog();

  sys.cache_fault.Kill();
  DispatcherOptions options;
  options.maintenance_budget = 8;
  options.maintenance_retry_limit = 4;
  options.maintenance_retry_backoff = std::chrono::microseconds(200);
  RequestDispatcher dispatcher(sys.agent.get(), options);

  // The worker must keep re-attempting while dead (wall-clock poll, not
  // a fixed sleep: all we need is evidence of bounded retrying).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (dispatcher.stats().maintenance_escalations == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  DispatcherStats mid = dispatcher.stats();
  EXPECT_GT(mid.maintenance_pump_errors, 0u);
  EXPECT_GE(mid.maintenance_pump_retries, 4u);
  EXPECT_GE(mid.maintenance_escalations, 1u);
  EXPECT_TRUE(sys.agent->store().reorder_pending());

  // Recovery: the next retry succeeds and the idle pump drains the
  // chain without any request traffic.
  sys.cache_fault.Revive();
  while (sys.agent->store().reorder_pending() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(sys.agent->store().reorder_pending());

  dispatcher.Stop();
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_GT(stats.maintenance_pumps, 0u);
}

}  // namespace
}  // namespace steghide::agent
