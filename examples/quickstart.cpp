// Quickstart: create a steganographic volume in a regular file, hide a
// document in it, and read it back — including after a full process
// restart with nothing but the file access key.
//
//   ./quickstart [volume-path]
//
// The volume file is indistinguishable from random bytes; without the
// printed FAK there is no way to tell it contains anything at all.

#include <cstdio>
#include <string>

#include "agent/volatile_agent.h"
#include "stegfs/stegfs_core.h"
#include "storage/file_block_device.h"

using namespace steghide;

namespace {

constexpr uint64_t kVolumeBlocks = 4096;  // 16 MB

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/steghide_quickstart.vol";

  // --- 1. Create and format a volume ----------------------------------
  auto device = storage::FileBlockDevice::Create(path, kVolumeBlocks);
  if (!device.ok()) return Fail(device.status());
  stegfs::StegFsCore core(&device.value(), stegfs::StegFsOptions{
                                               /*drbg_seed=*/20240330});
  if (auto st = core.Format(); !st.ok()) return Fail(st);
  std::printf("formatted %s: %llu blocks of random-looking bytes\n",
              path.c_str(),
              static_cast<unsigned long long>(kVolumeBlocks));

  std::string fak_text;
  std::string dummy_fak_text;
  const std::string document =
      "Meeting notes, 2004-03-30: the merger goes through on Friday.";

  // --- 2. A session: log in, hide a document ---------------------------
  {
    agent::VolatileAgent agent(&core);
    // Every user provisions dummy files next to his data (§4.2.1); they
    // are both his deniability cover and the relocation pool.
    auto dummy = agent.CreateDummyFile("alice", /*num_blocks=*/1024);
    if (!dummy.ok()) return Fail(dummy.status());
    auto file = agent.CreateHiddenFile("alice");
    if (!file.ok()) return Fail(file.status());

    if (auto st = agent.Write(*file, 0,
                              Bytes(document.begin(), document.end()));
        !st.ok()) {
      return Fail(st);
    }
    if (auto st = agent.Flush(*file); !st.ok()) return Fail(st);

    fak_text = agent.GetFak(*file)->Serialize();
    dummy_fak_text = agent.GetFak(*dummy)->Serialize();

    // Idle cover traffic, so the write pattern tells an observer nothing.
    if (auto st = agent.IdleDummyUpdates(64); !st.ok()) return Fail(st);

    if (auto st = agent.Logout("alice"); !st.ok()) return Fail(st);
    std::printf("hidden %zu bytes; agent forgot everything at logout\n",
                document.size());
  }

  std::printf("file access key (keep secret!):  %s\n", fak_text.c_str());
  std::printf("dummy file key (disclose freely): %s\n",
              dummy_fak_text.c_str());

  // --- 3. A later session: recover with the FAK alone ------------------
  {
    agent::VolatileAgent agent(&core);
    auto fak = stegfs::FileAccessKey::Deserialize(fak_text);
    if (!fak.ok()) return Fail(fak.status());
    auto file = agent.DiscloseHiddenFile("alice", *fak);
    if (!file.ok()) return Fail(file.status());
    auto content = agent.Read(*file, 0, document.size());
    if (!content.ok()) return Fail(content.status());
    std::printf("recovered: %s\n",
                std::string(content->begin(), content->end()).c_str());
    if (auto st = agent.Logout("alice"); !st.ok()) return Fail(st);
  }

  // --- 4. The wrong key opens nothing ----------------------------------
  {
    agent::VolatileAgent agent(&core);
    auto fak = stegfs::FileAccessKey::Deserialize(fak_text);
    auto wrong = *fak;
    wrong.header_key[0] ^= 1;
    auto attempt = agent.DiscloseHiddenFile("eve", wrong);
    std::printf("wrong key -> %s (indistinguishable from 'no such file')\n",
                attempt.status().ToString().c_str());
  }
  return 0;
}
