// Oblivious reads: serves a skewed read workload through the Section-5
// oblivious storage and shows (a) correct contents, (b) the observable
// access pattern staying flat, and (c) the cost structure the paper
// reports in Table 4 / Figure 12.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "agent/volatile_agent.h"
#include "oblivious/steg_partition_reader.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "storage/trace_device.h"
#include "util/random.h"

using namespace steghide;

namespace {
int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}
}  // namespace

int main() {
  // StegFS partition (8 MB) and oblivious partition on separate devices so
  // each can be instrumented independently.
  storage::MemBlockDevice steg_mem(2048, 4096);
  storage::MemBlockDevice obli_mem(1024, 4096);
  storage::TraceBlockDevice obli_traced(&obli_mem);
  storage::SimBlockDevice obli_sim(&obli_traced, storage::DiskModelParams{});

  stegfs::StegFsCore core(&steg_mem, stegfs::StegFsOptions{777});
  if (auto st = core.Format(); !st.ok()) return Fail(st);

  // Hide a 64-block file through the volatile agent.
  agent::VolatileAgent agent(&core);
  if (!agent.CreateDummyFile("u", 256).ok()) return 1;
  auto id = agent.CreateHiddenFile("u");
  if (!id.ok()) return Fail(id.status());
  const size_t payload = core.payload_size();
  Bytes data(64 * payload);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i / payload);  // block index as content
  }
  if (auto st = agent.Write(*id, 0, data); !st.ok()) return Fail(st);
  if (auto st = agent.Flush(*id); !st.ok()) return Fail(st);

  // Build the oblivious cache: B = 8 blocks, N = 256 -> k = 5 levels.
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 256;
  opts.partition_base = 0;
  opts.scratch_base = 2 * 256 - 2 * 8;  // after the hierarchy
  auto store = oblivious::ObliviousStore::Create(&obli_sim, opts);
  if (!store.ok()) return Fail(store.status());
  (*store)->set_clock_fn([&] { return obli_sim.clock_ms(); });

  auto file = core.LoadFile(*agent.GetFak(*id));
  if (!file.ok()) return Fail(file.status());
  file->agent_tag = 1;
  oblivious::StegPartitionReader reader(&core, store->get());

  std::printf("oblivious store: %d levels, hierarchy %llu blocks\n",
              (*store)->height(),
              static_cast<unsigned long long>((*store)->hierarchy_blocks()));

  // Skewed workload: 60 % of reads hit block 7, rest uniform. Verify
  // contents on every read.
  Rng rng(99);
  Bytes out(payload);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t logical = rng.Bernoulli(0.6) ? 7 : rng.Uniform(64);
    if (auto st = reader.ReadBlock(*file, logical, out.data()); !st.ok()) {
      return Fail(st);
    }
    if (out[0] != static_cast<uint8_t>(logical)) {
      std::fprintf(stderr, "content mismatch at block %llu\n",
                   static_cast<unsigned long long>(logical));
      return 1;
    }
    // Interleave idle dummy traffic, as the agent would.
    if (i % 10 == 0) {
      if (auto st = reader.IdleDummyOp(); !st.ok()) return Fail(st);
    }
  }

  const auto& rs = reader.stats();
  std::printf("reads served: cache_hits=%llu real_fetches=%llu "
              "dummy=%llu decoy=%llu\n",
              static_cast<unsigned long long>(rs.cache_hits),
              static_cast<unsigned long long>(rs.real_fetches),
              static_cast<unsigned long long>(rs.dummy_reads),
              static_cast<unsigned long long>(rs.decoy_reads));

  const auto& st = (*store)->stats();
  std::printf("oblivious store: overhead factor %.1f I/Os per request "
              "(a 60%%-hot workload mostly hits the agent buffer; for the "
              "paper's uniform-sweep 10k figure see bench_table4)\n",
              st.OverheadFactor());
  std::printf("time split: retrieve %.0f%%, sort %.0f%%\n",
              100.0 * st.retrieve_ms / (st.retrieve_ms + st.sort_ms),
              100.0 * st.sort_ms / (st.retrieve_ms + st.sort_ms));

  // The observable pattern: per-block read counts on the oblivious
  // partition. A 60%-hot workload must NOT show a hot block.
  std::vector<uint64_t> counts(obli_mem.num_blocks(), 0);
  for (const auto& ev : obli_traced.trace()) {
    if (ev.kind == storage::TraceEvent::Kind::kRead) ++counts[ev.block_id];
  }
  const uint64_t hottest = *std::max_element(counts.begin(), counts.end());
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  std::printf("observable reads on the oblivious partition: %llu; "
              "hottest single block saw %.2f%% of them\n",
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(hottest) /
                  static_cast<double>(total));
  std::printf("(the workload sent 60%% of requests to one block — the "
              "skew is gone from the wire)\n");
  return 0;
}
