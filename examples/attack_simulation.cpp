// Attack simulation: plays the paper's update-analysis attacker (§3.1,
// Figure 1) against both the 2003 StegFS baseline and this paper's
// StegHide construction, using the same hot-block workload — a DBMS
// updating one table page again and again.
//
// The attacker snapshots the raw storage between rounds, diffs the
// snapshots, and runs chi-square/KS tests against a dummy-only reference.

#include <cstdio>

#include "agent/volatile_agent.h"
#include "analysis/distinguisher.h"
#include "analysis/snapshot_diff.h"
#include "baseline/stegfs2003.h"
#include "storage/mem_block_device.h"
#include "storage/snapshot.h"

using namespace steghide;

namespace {

constexpr uint64_t kBlocks = 2048;
constexpr int kRounds = 100;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintVerdict(const char* label,
                  const analysis::DistinguisherVerdict& verdict) {
  std::printf("%-28s chi2 p=%-10.3g ks p=%-10.3g -> %s\n", label,
              verdict.position_chi2.p_value, verdict.position_ks.p_value,
              verdict.distinguished
                  ? "DISTINGUISHED: hidden data detected"
                  : "indistinguishable from dummy traffic");
}

// Dummy-only campaign on StegHide: the attacker's reference for "what the
// system looks like when nobody is doing anything".
Result<std::vector<uint64_t>> StegHideCampaign(uint64_t seed,
                                               int hot_updates_per_round) {
  storage::MemBlockDevice dev(kBlocks, 4096);
  stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{seed});
  STEGHIDE_RETURN_IF_ERROR(core.Format());
  agent::VolatileAgent agent(&core);
  STEGHIDE_RETURN_IF_ERROR(agent.CreateDummyFile("db", 600).status());
  STEGHIDE_ASSIGN_OR_RETURN(const auto id, agent.CreateHiddenFile("db"));
  const size_t payload = core.payload_size();
  STEGHIDE_RETURN_IF_ERROR(agent.Write(id, 0, Bytes(payload * 200, 1)));

  analysis::UpdateAnalysisObserver observer(kBlocks);
  STEGHIDE_ASSIGN_OR_RETURN(auto prev, storage::Snapshot::Capture(dev));
  const Bytes page(payload, 0xdb);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < hot_updates_per_round; ++i) {
      // "UPDATE sal_table SET salary += 100000 WHERE name = 'Bob'" — the
      // same page, every time.
      STEGHIDE_RETURN_IF_ERROR(agent.Write(id, 3 * payload, page));
    }
    STEGHIDE_RETURN_IF_ERROR(
        agent.IdleDummyUpdates(5 - hot_updates_per_round));
    STEGHIDE_ASSIGN_OR_RETURN(auto next, storage::Snapshot::Capture(dev));
    STEGHIDE_RETURN_IF_ERROR(observer.ObserveDiff(prev, next));
    prev = std::move(next);
  }
  return observer.counts();
}

}  // namespace

int main() {
  analysis::DistinguisherOptions opts;
  opts.alpha = 0.01;
  opts.num_bins = 16;

  std::printf("attacker: %d snapshot diffs, chi-square + KS at alpha=%.2f\n\n",
              kRounds, opts.alpha);

  auto reference = StegHideCampaign(1, /*hot_updates_per_round=*/0);
  if (!reference.ok()) return Fail(reference.status());

  // --- StegFS 2003: in-place updates, no cover traffic -----------------
  {
    storage::MemBlockDevice dev(kBlocks, 4096);
    stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{2});
    if (auto st = core.Format(); !st.ok()) return Fail(st);
    baseline::StegFs2003 fs(&core);
    auto id = fs.CreateFile();
    if (!id.ok()) return Fail(id.status());
    const size_t payload = core.payload_size();
    if (auto st = fs.Write(*id, 0, Bytes(payload * 200, 1)); !st.ok()) {
      return Fail(st);
    }

    analysis::UpdateAnalysisObserver observer(kBlocks);
    auto prev = storage::Snapshot::Capture(dev);
    if (!prev.ok()) return Fail(prev.status());
    const Bytes page(payload, 0xdb);
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < 2; ++i) {
        if (auto st = fs.UpdateBlock(*id, 3, page.data()); !st.ok()) {
          return Fail(st);
        }
      }
      auto next = storage::Snapshot::Capture(dev);
      if (!next.ok()) return Fail(next.status());
      if (auto st = observer.ObserveDiff(*prev, *next); !st.ok()) {
        return Fail(st);
      }
      prev = std::move(next).value();
    }
    PrintVerdict("StegFS (2003), hot updates:",
                 analysis::DistinguishUpdateCounts(observer.counts(),
                                                   *reference, opts));
  }

  // --- StegHide: Figure-6 relocation + dummy updates --------------------
  {
    auto suspect = StegHideCampaign(3, /*hot_updates_per_round=*/2);
    if (!suspect.ok()) return Fail(suspect.status());
    PrintVerdict("StegHide (2004), hot updates:",
                 analysis::DistinguishUpdateCounts(*suspect, *reference,
                                                   opts));
  }

  // --- Sanity: dummy-only vs dummy-only ---------------------------------
  {
    auto quiet = StegHideCampaign(4, 0);
    if (!quiet.ok()) return Fail(quiet.status());
    PrintVerdict("StegHide, no user activity:",
                 analysis::DistinguishUpdateCounts(*quiet, *reference, opts));
  }

  std::printf(
      "\nthe 2003 system leaks the hot page through snapshot diffs; the\n"
      "2004 mechanisms make the same workload statistically invisible.\n");
  return 0;
}
