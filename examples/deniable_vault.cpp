// Deniable vault: the plausible-deniability story of §4.2, played out.
//
// Alice keeps a real file and dummy files on a shared volume. When an
// adversary coerces her, she surrenders (a) her dummy files and (b) her
// real file's header components with a *decoy* content key, claiming it
// is yet another dummy. The example shows why nothing the adversary can
// compute from the volume contradicts her.

#include <cstdio>
#include <string>

#include "agent/volatile_agent.h"
#include "stegfs/stegfs_core.h"
#include "storage/mem_block_device.h"

using namespace steghide;

namespace {
int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

bool LooksRandom(const Bytes& data) {
  // Crude check: byte histogram close to flat.
  size_t counts[256] = {};
  for (uint8_t b : data) counts[b]++;
  const double expected = static_cast<double>(data.size()) / 256.0;
  for (size_t c : counts) {
    if (static_cast<double>(c) > 4.0 * expected + 8) return false;
  }
  return true;
}
}  // namespace

int main() {
  storage::MemBlockDevice device(8192, 4096);  // 32 MB volume
  stegfs::StegFsCore core(&device, stegfs::StegFsOptions{424242});
  if (auto st = core.Format(); !st.ok()) return Fail(st);

  const std::string secret = "wire 2,000,000 to acct CH93-0076-2011-6238";
  std::string real_fak_text, dummy1_text, dummy2_text;

  // --- Alice's normal session ------------------------------------------
  {
    agent::VolatileAgent agent(&core);
    auto dummy1 = agent.CreateDummyFile("alice", 512);
    auto dummy2 = agent.CreateDummyFile("alice", 512);
    auto file = agent.CreateHiddenFile("alice");
    if (!dummy1.ok() || !dummy2.ok() || !file.ok()) return 1;
    if (auto st =
            agent.Write(*file, 0, Bytes(secret.begin(), secret.end()));
        !st.ok()) {
      return Fail(st);
    }
    if (auto st = agent.Flush(*file); !st.ok()) return Fail(st);

    real_fak_text = agent.GetFak(*file)->Serialize();
    dummy1_text = agent.GetFak(*dummy1)->Serialize();
    dummy2_text = agent.GetFak(*dummy2)->Serialize();
    if (auto st = agent.Logout("alice"); !st.ok()) return Fail(st);
  }
  std::printf("alice hid %zu secret bytes among 2 dummy files\n\n",
              secret.size());

  // --- Coercion --------------------------------------------------------
  // The adversary: "we know you store things here. give us your keys."
  // Alice hands over the two dummy files, plus the real file disguised
  // with a decoy content key.
  auto real_fak = stegfs::FileAccessKey::Deserialize(real_fak_text);
  if (!real_fak.ok()) return Fail(real_fak.status());
  crypto::HashDrbg decoy_rng(uint64_t{5});
  const stegfs::FileAccessKey surrendered =
      real_fak->WithDecoyContentKey(decoy_rng);

  agent::VolatileAgent adversary_agent(&core);
  for (const auto& [label, text] :
       {std::pair<std::string, std::string>{"dummy #1", dummy1_text},
        {"dummy #2", dummy2_text},
        {"the 'dummy' that is really the secret", surrendered.Serialize()}}) {
    auto fak = stegfs::FileAccessKey::Deserialize(text);
    if (!fak.ok()) return Fail(fak.status());
    auto opened = adversary_agent.DiscloseDummyFile("adversary", *fak);
    if (!opened.ok()) return Fail(opened.status());

    // The adversary decrypts the content with the surrendered key.
    auto loaded = core.LoadFile(*fak);
    if (!loaded.ok()) return Fail(loaded.status());
    Bytes content(core.payload_size());
    if (loaded->num_data_blocks() > 0) {
      if (auto st = core.ReadFileBlock(*loaded, 0, content.data()); !st.ok()) {
        return Fail(st);
      }
    }
    std::printf("adversary opens %-40s -> header valid, %llu blocks, "
                "content %s\n",
                label.c_str(),
                static_cast<unsigned long long>(loaded->num_data_blocks()),
                LooksRandom(content) ? "looks like random bytes"
                                     : "HAS STRUCTURE (deniability broken!)");
  }

  // --- Alice, later, with the true key ---------------------------------
  agent::VolatileAgent agent(&core);
  auto file = agent.DiscloseHiddenFile("alice", *real_fak);
  if (!file.ok()) return Fail(file.status());
  auto content = agent.Read(*file, 0, secret.size());
  if (!content.ok()) return Fail(content.status());
  std::printf("\nalice, with the real content key, still reads: %s\n",
              std::string(content->begin(), content->end()).c_str());
  return 0;
}
